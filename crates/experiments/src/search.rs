//! Pareto-front adversarial scenario search over spec space.
//!
//! The streaming pipeline can execute any [`ScenarioSpec`], and
//! `workload::synth` can expand unlimited seeded mix families — but until
//! now the specs themselves were authored by hand. This module closes the
//! loop: a deterministic, ChaCha-seeded multi-objective evolutionary search
//! mutates and recombines spec parameters (platform core count, synthetic
//! population, mix-family seed and size, QoS tightness, game-theoretic
//! manager variant), evaluates every candidate through the existing
//! [`SweepEngine`](crate::sweep) path, and maintains a dominance-correct,
//! capacity-bounded **Pareto archive** of the most interesting scenarios
//! found.
//!
//! # Fitness vector
//!
//! Each candidate spec carries two manager variants — RM2
//! ([`RmaVariant::Paper1`]) and a Nash variant — so one sweep of the
//! candidate yields a four-objective fitness vector, every objective
//! *maximized* (the search is adversarial: it hunts scenarios where the
//! managers behave interestingly, not well):
//!
//! * **energy savings** — mean RM2 savings over the candidate's mixes;
//! * **QoS at risk** — total intervals the managers flagged as infeasible
//!   ([`rma_sim::Comparison::qos_at_risk_intervals`]), summed over cells;
//! * **model error** — mean per-interval expected violation magnitude
//!   ([`rma_sim::IntervalViolationStats::expected_magnitude`]);
//! * **manager disagreement** — mean absolute energy-savings delta between
//!   RM2 and the Nash variant on the same mix (where selfish and
//!   cooperative management diverge).
//!
//! # Pareto Strength scalarization
//!
//! Selection and archive truncation scalarize the fitness vectors with the
//! SPEA-style Pareto Strength procedure (the NEAT-PS exemplar): a
//! candidate's *strength* is how many pool members it dominates, its *raw
//! fitness* is the summed strength of everything dominating it (0 ⇔
//! nondominated). Candidates order by raw fitness ascending, then strength
//! descending, then fitness vector lexicographically descending, then pool
//! index — a total, deterministic order.
//!
//! # Archive format and replay contract
//!
//! The archive directory holds ordinary artefacts of the existing pipeline:
//!
//! ```text
//! archive/
//!   manifest.json        seed, generations, fitness vectors, member order
//!   spec-g1c03.json      an archived candidate (ScenarioSpec::save bytes)
//!   result-g1c03.json    its evaluation     (SweepResult::save bytes)
//! ```
//!
//! Every archived spec replays through `sweep run` + `sweep merge` (or the
//! serve daemon) to a result file **byte-identical** to the stored
//! `result-*.json`, because the search evaluates through the same
//! `SweepEngine` the streaming executor uses and the serial / parallel /
//! memoized / streamed paths are locked byte-identical by the equivalence
//! tests. No wall clock and no RNG outside the seeded generator touches the
//! loop, so a fixed seed reproduces the archive byte-for-byte across runs
//! and machines.

use crate::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use crate::sweep::{self, QosAxis, RmaVariant, SweepResult};
use crate::ExperimentContext;
use qosrm_types::{QosSpec, QosrmError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use workload::{MixPopulation, SynthSpec};

/// Schema tag of the archive manifest.
pub const MANIFEST_SCHEMA: &str = "qosrm-search/v1";

/// File name of the archive manifest within the archive directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// The QoS-tightness ladder the search explores: label and relaxation
/// fraction. Part of the deterministic-archive contract (a reorder changes
/// what a seed explores), like [`MixPopulation::ALL`].
pub const QOS_LADDER: [(&str, f64); 4] = [
    ("strict", 0.0),
    ("relax05", 0.05),
    ("relax10", 0.10),
    ("relax30", 0.30),
];

/// Platform core counts the search explores (Paper I platforms).
pub const CORE_CHOICES: [usize; 2] = [4, 8];

/// Which game-theoretic variant rides next to RM2 in a candidate spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NashSide {
    /// Iterated best response ([`RmaVariant::NashBestResponse`]).
    BestResponse,
    /// Minimum-energy pure equilibrium ([`RmaVariant::NashEquilibrium`]).
    /// Restricted to 4-core platforms: the exhaustive equilibrium
    /// enumeration is exponential in cores.
    Equilibrium,
}

impl NashSide {
    fn variant(self) -> RmaVariant {
        match self {
            NashSide::BestResponse => RmaVariant::NashBestResponse,
            NashSide::Equilibrium => RmaVariant::NashEquilibrium,
        }
    }
}

/// Knobs of one search run. Everything that shapes the archive is here, so
/// `(SearchConfig, quick)` fully determines the archive bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Root seed of the whole run; the only entropy source.
    pub seed: u64,
    /// Evolutionary generations to run (generation 0 is the seeded random
    /// initial population).
    pub generations: usize,
    /// Candidates per generation.
    pub population: usize,
    /// Maximum archive members retained (Pareto Strength truncation).
    pub capacity: usize,
    /// Upper bound on a candidate's synthetic mix-family size (`count`).
    pub max_mixes: usize,
    /// Prefix of candidate spec names (`"{name}-g{gen}c{slot}"`).
    pub name: String,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            seed: 7,
            generations: 3,
            population: 6,
            capacity: 8,
            max_mixes: 3,
            name: "search".to_string(),
        }
    }
}

/// The heritable parameters of one candidate scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    /// Core count of the Paper I platform axis.
    pub cores: usize,
    /// Synthetic mix family (its `num_cores` always equals `cores`).
    pub synth: SynthSpec,
    /// Index into [`QOS_LADDER`].
    pub qos_level: usize,
    /// The Nash variant evaluated next to RM2.
    pub nash: NashSide,
}

impl Genome {
    /// Draws a random genome from the seeded generator.
    pub fn random(rng: &mut ChaCha8Rng, config: &SearchConfig) -> Genome {
        let cores = CORE_CHOICES[rng.gen_range(0..CORE_CHOICES.len())];
        let synth = SynthSpec {
            seed: rng.gen(),
            count: 1 + rng.gen_range(0..config.max_mixes.max(1) as u64) as usize,
            num_cores: cores,
            population: MixPopulation::ALL[rng.gen_range(0..MixPopulation::ALL.len())],
            name_prefix: "sx-".to_string(),
        };
        let qos_level = rng.gen_range(0..QOS_LADDER.len());
        let nash = Genome::pick_nash(rng, cores);
        Genome {
            cores,
            synth,
            qos_level,
            nash,
        }
    }

    /// Draws a Nash side valid for `cores` (equilibrium enumeration is
    /// exponential in cores, so 8-core genomes stick to best response).
    fn pick_nash(rng: &mut ChaCha8Rng, cores: usize) -> NashSide {
        if cores > 4 || rng.gen_range(0..2u64) == 0 {
            NashSide::BestResponse
        } else {
            NashSide::Equilibrium
        }
    }

    /// Returns a mutated copy: one gene (platform, synth family, QoS level
    /// or Nash side) changes.
    pub fn mutated(&self, rng: &mut ChaCha8Rng, config: &SearchConfig) -> Genome {
        let mut next = self.clone();
        match rng.gen_range(0..4u64) {
            0 => {
                // Move to the next platform choice; the synth family is
                // structurally tied to the core count.
                let at = CORE_CHOICES
                    .iter()
                    .position(|c| *c == self.cores)
                    .unwrap_or(0);
                next.cores = CORE_CHOICES[(at + 1) % CORE_CHOICES.len()];
                next.synth.num_cores = next.cores;
                if next.cores > 4 {
                    next.nash = NashSide::BestResponse;
                }
            }
            1 => next.synth = self.synth.mutated(rng, config.max_mixes.max(1)),
            2 => {
                let offset = 1 + rng.gen_range(0..(QOS_LADDER.len() as u64 - 1)) as usize;
                next.qos_level = (self.qos_level + offset) % QOS_LADDER.len();
            }
            _ => {
                next.nash = match (self.nash, self.cores) {
                    (NashSide::BestResponse, c) if c <= 4 => NashSide::Equilibrium,
                    _ => NashSide::BestResponse,
                };
            }
        }
        next
    }

    /// Uniform crossover: the platform (and with it the synth family's
    /// structural genes) comes from one parent chosen by `rng`, the synth
    /// value genes recombine via [`SynthSpec::crossover`], and QoS / Nash
    /// genes pick a parent each.
    pub fn crossover(&self, other: &Genome, rng: &mut ChaCha8Rng) -> Genome {
        let (primary, secondary) = if rng.gen_range(0..2u64) == 0 {
            (self, other)
        } else {
            (other, self)
        };
        let mut child = primary.clone();
        child.synth = primary.synth.crossover(&secondary.synth, rng);
        child.qos_level = if rng.gen_range(0..2u64) == 0 {
            self.qos_level
        } else {
            other.qos_level
        };
        child.nash = if rng.gen_range(0..2u64) == 0 {
            self.nash
        } else {
            other.nash
        };
        if child.cores > 4 {
            child.nash = NashSide::BestResponse;
        }
        child
    }

    /// Lowers the genome to a named, executable [`ScenarioSpec`]: one
    /// Paper I platform axis over the synthetic family, one uniform QoS
    /// axis, and the RM2 + Nash variant pair the disagreement objective
    /// needs.
    pub fn spec(&self, name: &str) -> ScenarioSpec {
        let (qos_label, fraction) = QOS_LADDER[self.qos_level % QOS_LADDER.len()];
        let qos = if fraction == 0.0 {
            QosSpec::STRICT
        } else {
            QosSpec::relaxed_by(fraction)
        };
        ScenarioSpec {
            name: name.to_string(),
            platforms: vec![PlatformAxisSpec {
                label: format!("p{}", self.cores),
                platform: PlatformSpec::Paper1 {
                    num_cores: self.cores,
                },
                workloads: WorkloadSource::Synth(self.synth.clone()),
            }],
            qos: vec![QosAxis::uniform(qos_label, qos)],
            variants: vec![RmaVariant::Paper1, self.nash.variant()],
            options: None,
        }
    }
}

/// The four maximized objectives of one evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessVector {
    /// Mean RM2 energy savings over the candidate's mixes.
    pub energy_savings: f64,
    /// Total QoS-at-risk intervals over every (mix, variant) cell.
    pub qos_at_risk: f64,
    /// Mean expected per-interval violation magnitude over every cell.
    pub model_error: f64,
    /// Mean |RM2 − Nash| energy-savings delta over the mixes.
    pub disagreement: f64,
}

impl FitnessVector {
    /// The objectives as an array, in the declared order.
    pub fn as_array(&self) -> [f64; 4] {
        [
            self.energy_savings,
            self.qos_at_risk,
            self.model_error,
            self.disagreement,
        ]
    }

    /// Pareto dominance with all objectives maximized: `self` dominates
    /// `other` iff it is no worse everywhere and strictly better somewhere.
    pub fn dominates(&self, other: &FitnessVector) -> bool {
        let a = self.as_array();
        let b = other.as_array();
        let mut strictly_better = false;
        for (x, y) in a.iter().zip(b.iter()) {
            if x < y {
                return false;
            }
            if x > y {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

/// Strength and raw fitness of one pool member under the SPEA-style Pareto
/// Strength procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrengthScore {
    /// How many pool members this one dominates.
    pub strength: u64,
    /// Summed strength of every member dominating this one; 0 means
    /// nondominated. Lower is better.
    pub raw: u64,
}

/// Computes the Pareto Strength scores of a pool of fitness vectors.
pub fn pareto_strength(pool: &[FitnessVector]) -> Vec<StrengthScore> {
    let n = pool.len();
    let mut strength = vec![0u64; n];
    for (i, a) in pool.iter().enumerate() {
        for b in pool.iter() {
            if a.dominates(b) {
                strength[i] += 1;
            }
        }
    }
    let mut scores = Vec::with_capacity(n);
    for (i, a) in pool.iter().enumerate() {
        let mut raw = 0u64;
        for (j, b) in pool.iter().enumerate() {
            if b.dominates(a) {
                raw += strength[j];
            }
        }
        scores.push(StrengthScore {
            strength: strength[i],
            raw,
        });
    }
    scores
}

/// Orders pool indices best-first under the Pareto Strength scalarization:
/// raw ascending, strength descending, fitness vector lexicographically
/// descending, then index. The order is total and deterministic.
pub fn rank_by_strength(pool: &[FitnessVector]) -> Vec<usize> {
    let scores = pareto_strength(pool);
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .raw
            .cmp(&scores[b].raw)
            .then(scores[b].strength.cmp(&scores[a].strength))
            .then_with(|| {
                let va = pool[a].as_array();
                let vb = pool[b].as_array();
                for (x, y) in va.iter().zip(vb.iter()) {
                    let ord = y.total_cmp(x);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            })
            .then(a.cmp(&b))
    });
    order
}

/// Dominance-correct, capacity-bounded archive selection: returns the pool
/// indices that survive, in Pareto Strength order (best first).
///
/// A member survives only if *no* pool member dominates it (so the archive
/// never retains a dominated member), and at most `capacity` survivors are
/// kept — truncation drops the tail of the Pareto Strength ordering, whose
/// ranking is computed against the **whole** pool (dominated members still
/// count towards strength, as SPEA prescribes).
pub fn select_archive(pool: &[FitnessVector], capacity: usize) -> Vec<usize> {
    let scores = pareto_strength(pool);
    rank_by_strength(pool)
        .into_iter()
        .filter(|&i| scores[i].raw == 0)
        .take(capacity.max(1))
        .collect()
}

/// One archived scenario, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveMember {
    /// Candidate id (`g{generation}c{slot}`), stable for the member's
    /// lifetime.
    pub id: String,
    /// Generation the member was first evaluated in.
    pub generation: usize,
    /// Its fitness vector.
    pub fitness: FitnessVector,
    /// Spec file within the archive directory (`ScenarioSpec::save` bytes;
    /// replays through `sweep run`).
    pub spec_file: String,
    /// Result file within the archive directory (`SweepResult::save`
    /// bytes; byte-identical to a `sweep merge` of the replayed spec).
    pub result_file: String,
}

/// The archive manifest (`manifest.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchManifest {
    /// Manifest schema tag ([`MANIFEST_SCHEMA`]).
    pub schema: String,
    /// Root seed the archive was grown from.
    pub seed: u64,
    /// Whether candidates were evaluated against quick-mode databases
    /// (replays must use the same mode).
    pub quick: bool,
    /// Generations completed.
    pub generations: usize,
    /// Distinct candidate evaluations performed (duplicates of an already
    /// evaluated genome are not re-run).
    pub evaluations: u64,
    /// Archive capacity the run was bounded to.
    pub capacity: usize,
    /// Members in Pareto Strength order (best first).
    pub members: Vec<ArchiveMember>,
}

impl SearchManifest {
    /// Loads the manifest of an archive directory.
    pub fn load(dir: &Path) -> Result<Self, QosrmError> {
        simdb::persist::load_json(&dir.join(MANIFEST_FILE))
    }
}

/// What a search run did (the CLI prints it; the bench gate exact-compares
/// the counters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchReport {
    /// Generations completed.
    pub generations: usize,
    /// Candidate genomes proposed (including duplicates of evaluated ones).
    pub candidates: u64,
    /// Distinct sweep evaluations performed.
    pub evaluations: u64,
    /// Scenarios simulated across all evaluations.
    pub scenarios: u64,
    /// Final archive size.
    pub archive_size: usize,
}

/// One evaluated candidate the run keeps in memory until the archive is
/// written.
struct Candidate {
    id: String,
    generation: usize,
    genome: Genome,
    fitness: FitnessVector,
    result: SweepResult,
}

/// Computes the fitness vector of an evaluated candidate sweep. `nash` is
/// the variant label paired with RM2 in the candidate's spec.
pub fn fitness_of(result: &SweepResult, nash_label: &str) -> FitnessVector {
    let mut rm2_by_mix: Vec<(String, f64)> = Vec::new();
    let mut nash_by_mix: HashMap<String, f64> = HashMap::new();
    let mut risk = 0.0f64;
    let mut error_sum = 0.0f64;
    let mut cells = 0usize;
    for outcome in &result.scenarios {
        let comparison = &outcome.comparison;
        risk += comparison.qos_at_risk_intervals as f64;
        error_sum += comparison.interval_stats.expected_magnitude();
        cells += 1;
        if outcome.key.variant == "RM2" {
            rm2_by_mix.push((outcome.key.mix.clone(), comparison.energy_savings));
        } else if outcome.key.variant == nash_label {
            nash_by_mix.insert(outcome.key.mix.clone(), comparison.energy_savings);
        }
    }
    let energy = if rm2_by_mix.is_empty() {
        0.0
    } else {
        rm2_by_mix.iter().map(|(_, s)| s).sum::<f64>() / rm2_by_mix.len() as f64
    };
    let mut disagreement = 0.0f64;
    let mut pairs = 0usize;
    for (mix, rm2) in &rm2_by_mix {
        if let Some(nash) = nash_by_mix.get(mix) {
            disagreement += (rm2 - nash).abs();
            pairs += 1;
        }
    }
    FitnessVector {
        energy_savings: energy,
        qos_at_risk: risk,
        model_error: if cells == 0 {
            0.0
        } else {
            error_sum / cells as f64
        },
        disagreement: if pairs == 0 {
            0.0
        } else {
            disagreement / pairs as f64
        },
    }
}

/// Runs the evolutionary search and writes the Pareto archive into
/// `out_dir`. Deterministic per `(config, ctx.quick)`: the archive bytes
/// (specs, results, manifest) are identical across runs and machines for a
/// fixed seed.
pub fn run(
    config: &SearchConfig,
    ctx: &ExperimentContext,
    out_dir: &Path,
) -> Result<SearchReport, QosrmError> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let population = config.population.max(2);

    // Genome fingerprint -> evaluated candidate. A genome reappearing in a
    // later generation is not re-evaluated (and not re-archived under a
    // second id), which keeps the evaluation counters meaningful and the
    // archive free of duplicates.
    let mut evaluated: HashMap<String, usize> = HashMap::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut archive: Vec<usize> = Vec::new();
    let mut proposed = 0u64;
    let mut scenarios = 0u64;

    let mut genomes: Vec<Genome> = (0..population)
        .map(|_| Genome::random(&mut rng, config))
        .collect();

    let generations = config.generations.max(1);
    for generation in 0..generations {
        // Evaluate this generation's genomes (slot order; duplicates hit
        // the cache).
        let mut fresh: Vec<usize> = Vec::new();
        for (slot, genome) in genomes.iter().enumerate() {
            proposed += 1;
            let key = genome_key(genome);
            if evaluated.contains_key(&key) {
                continue;
            }
            let id = format!("g{generation}c{slot:02}");
            let spec = genome.spec(&format!("{}-{id}", config.name));
            let grid = spec.lower()?;
            let result = sweep::run_with(&grid, ctx, &ctx.sweep);
            scenarios += result.scenarios.len() as u64;
            let fitness = fitness_of(&result, genome.nash.variant().label());
            let index = candidates.len();
            candidates.push(Candidate {
                id,
                generation,
                genome: genome.clone(),
                fitness,
                result,
            });
            evaluated.insert(key, index);
            fresh.push(index);
        }

        // Archive update: pool = previous archive ∪ fresh evaluations, in
        // that (deterministic) order.
        let mut pool: Vec<usize> = archive.clone();
        for index in &fresh {
            if !pool.contains(index) {
                pool.push(*index);
            }
        }
        let fitnesses: Vec<FitnessVector> = pool.iter().map(|&i| candidates[i].fitness).collect();
        archive = select_archive(&fitnesses, config.capacity)
            .into_iter()
            .map(|i| pool[i])
            .collect();

        // Breed the next generation from the Pareto Strength ranking of the
        // same pool (the last generation skips breeding).
        if generation + 1 == generations {
            break;
        }
        let ranked = rank_by_strength(&fitnesses);
        let parents: Vec<usize> = ranked
            .into_iter()
            .take(population.max(2))
            .map(|i| pool[i])
            .collect();
        genomes = (0..population)
            .map(|_| {
                let a = &candidates[parents[rng.gen_range(0..parents.len())]].genome;
                let b = &candidates[parents[rng.gen_range(0..parents.len())]].genome;
                let child = if rng.gen_range(0..2u64) == 0 {
                    a.crossover(b, &mut rng)
                } else {
                    a.clone()
                };
                child.mutated(&mut rng, config)
            })
            .collect();
    }

    // The manifest lists the front in the Pareto Strength order of the
    // *final members alone* (selection ranked against evaluation pools that
    // are gone by now): the order is recomputable from the manifest itself.
    let front: Vec<FitnessVector> = archive.iter().map(|&i| candidates[i].fitness).collect();
    let archive: Vec<usize> = rank_by_strength(&front)
        .into_iter()
        .map(|i| archive[i])
        .collect();

    let members = write_archive(config, ctx.quick, out_dir, &candidates, &archive)?;
    Ok(SearchReport {
        generations,
        candidates: proposed,
        evaluations: candidates.len() as u64,
        scenarios,
        archive_size: members,
    })
}

/// Stable identity of a genome (content fingerprint).
fn genome_key(genome: &Genome) -> String {
    let digest = qosrm_core::memo::fingerprint(genome);
    format!("{:016x}{:016x}", digest.0, digest.1)
}

/// Persists the archive: member spec/result files plus the manifest, and
/// removes stale `spec-*`/`result-*` files from earlier runs or evicted
/// members so the directory contents equal the manifest exactly.
fn write_archive(
    config: &SearchConfig,
    quick: bool,
    out_dir: &Path,
    candidates: &[Candidate],
    archive: &[usize],
) -> Result<usize, QosrmError> {
    std::fs::create_dir_all(out_dir).map_err(|e| {
        QosrmError::Io(format!(
            "cannot create archive directory {}: {e}",
            out_dir.display()
        ))
    })?;

    let mut members = Vec::with_capacity(archive.len());
    let mut keep: Vec<String> = vec![MANIFEST_FILE.to_string()];
    for &index in archive {
        let candidate = &candidates[index];
        let spec_file = format!("spec-{}.json", candidate.id);
        let result_file = format!("result-{}.json", candidate.id);
        candidate
            .genome
            .spec(&format!("{}-{}", config.name, candidate.id))
            .save(&out_dir.join(&spec_file))?;
        candidate.result.save(&out_dir.join(&result_file))?;
        keep.push(spec_file.clone());
        keep.push(result_file.clone());
        members.push(ArchiveMember {
            id: candidate.id.clone(),
            generation: candidate.generation,
            fitness: candidate.fitness,
            spec_file,
            result_file,
        });
    }

    let manifest = SearchManifest {
        schema: MANIFEST_SCHEMA.to_string(),
        seed: config.seed,
        quick,
        generations: config.generations.max(1),
        evaluations: candidates.len() as u64,
        capacity: config.capacity,
        members,
    };
    let json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| QosrmError::Io(format!("cannot serialize the archive manifest: {e}")))?;
    simdb::persist::write_atomic(&out_dir.join(MANIFEST_FILE), json.as_bytes())?;

    // Drop spec/result files the manifest no longer references.
    let entries = std::fs::read_dir(out_dir)
        .map_err(|e| QosrmError::Io(format!("cannot list {}: {e}", out_dir.display())))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let stale = (name.starts_with("spec-") || name.starts_with("result-"))
            && name.ends_with(".json")
            && !keep.contains(&name);
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    Ok(manifest.members.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(values: [f64; 4]) -> FitnessVector {
        FitnessVector {
            energy_savings: values[0],
            qos_at_risk: values[1],
            model_error: values[2],
            disagreement: values[3],
        }
    }

    #[test]
    fn dominance_requires_no_worse_everywhere_and_better_somewhere() {
        let a = vector([1.0, 2.0, 3.0, 4.0]);
        let b = vector([1.0, 2.0, 3.0, 3.0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "dominance is irreflexive");
        let c = vector([2.0, 1.0, 3.0, 4.0]);
        assert!(!a.dominates(&c), "trade-offs are incomparable");
        assert!(!c.dominates(&a));
    }

    #[test]
    fn strength_and_raw_follow_spea() {
        // d is dominated by a and b; a and b are incomparable; c dominates
        // everything.
        let pool = vec![
            vector([2.0, 1.0, 0.0, 0.0]),
            vector([1.0, 2.0, 0.0, 0.0]),
            vector([3.0, 3.0, 0.0, 0.0]),
            vector([1.0, 1.0, 0.0, 0.0]),
        ];
        let scores = pareto_strength(&pool);
        assert_eq!(scores[2].strength, 3);
        assert_eq!(scores[2].raw, 0);
        assert_eq!(scores[0].raw, 3, "dominated only by c (strength 3)");
        assert_eq!(scores[3].raw, 1 + 1 + 3, "dominated by a, b and c");
    }

    #[test]
    fn archive_selection_is_dominance_correct_and_bounded() {
        let pool = vec![
            vector([1.0, 4.0, 0.0, 0.0]),
            vector([2.0, 3.0, 0.0, 0.0]),
            vector([3.0, 2.0, 0.0, 0.0]),
            vector([4.0, 1.0, 0.0, 0.0]),
            vector([0.5, 0.5, 0.0, 0.0]), // dominated by all of the front
        ];
        let scores = pareto_strength(&pool);
        let selected = select_archive(&pool, 3);
        assert_eq!(selected.len(), 3, "capacity bound holds");
        for &i in &selected {
            assert_eq!(scores[i].raw, 0, "archive kept a dominated member");
        }
        // Truncation keeps the Pareto Strength ordering: the survivors are
        // a prefix of the full ranking restricted to nondominated members.
        let full: Vec<usize> = rank_by_strength(&pool)
            .into_iter()
            .filter(|&i| scores[i].raw == 0)
            .collect();
        assert_eq!(selected, full[..3].to_vec());
    }

    #[test]
    fn genome_ops_are_deterministic_and_respect_constraints() {
        let config = SearchConfig::default();
        let mut r1 = ChaCha8Rng::seed_from_u64(3);
        let mut r2 = ChaCha8Rng::seed_from_u64(3);
        let a = Genome::random(&mut r1, &config);
        assert_eq!(a, Genome::random(&mut r2, &config));
        assert_eq!(a.synth.num_cores, a.cores);
        for round in 0..64u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(round);
            let m = a.mutated(&mut rng, &config);
            assert_eq!(m.synth.num_cores, m.cores, "synth family follows cores");
            assert!(m.synth.count >= 1 && m.synth.count <= config.max_mixes);
            if m.cores > 4 {
                assert_eq!(m.nash, NashSide::BestResponse);
            }
            let b = Genome::random(&mut rng, &config);
            let child = a.crossover(&b, &mut rng);
            assert_eq!(child.synth.num_cores, child.cores);
            if child.cores > 4 {
                assert_eq!(child.nash, NashSide::BestResponse);
            }
        }
    }

    #[test]
    fn genome_specs_validate_and_lower() {
        let config = SearchConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for i in 0..16 {
            let genome = Genome::random(&mut rng, &config);
            let spec = genome.spec(&format!("t-{i}"));
            let grid = spec.lower().expect("random genome lowers");
            grid.validate().expect("lowered grid validates");
        }
    }
}
