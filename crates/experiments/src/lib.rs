//! # experiments
//!
//! Experiment runners that regenerate every table and figure of the paper's
//! evaluation (the experiment index E1–E10 and its mapping to paper figures
//! and tables lives in `crates/README.md`).
//!
//! Each experiment module exposes a `run(&ExperimentContext) -> ExperimentReport`
//! function; the `qosrm-experiments` binary runs them all (or a selection) and
//! prints the same rows/series the paper reports. The expensive
//! simulation-results database is built once per platform and cached on disk.
//!
//! The baseline-comparison experiments (E1, E3, E4, E6, E7, E8, E10) are
//! declarative [`sweep::ScenarioGrid`]s over the parallel scenario-sweep
//! engine in [`sweep`]. E2 still drives the simulator directly because its
//! two variants run under *different* simulation options (a grid shares one
//! options struct), and E5/E9 measure invocation overhead rather than
//! baseline comparisons. E10 goes beyond the paper: it compares the
//! game-theoretic managers of [`qosrm_core::game`] against the cooperative
//! RM2 and reports their price of anarchy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod diagnose;
pub mod dist;
pub mod e10_price_of_anarchy;
pub mod e1_energy_savings;
pub mod e2_model_error;
pub mod e3_qos_relaxation;
pub mod e4_baseline_sensitivity;
pub mod e5_overhead;
pub mod e6_scenario_analysis;
pub mod e7_scenario_savings;
pub mod e8_model_comparison;
pub mod e9_overhead_scaling;
pub mod report;
pub mod search;
pub mod spec;
pub mod stream;
pub mod sweep;
pub mod sync;

pub use context::{ExperimentContext, RmaTelemetry};
pub use dist::{Coordinator, CoordinatorConfig, CoordinatorServer, Resolution, WorkerConfig};
pub use report::{ExperimentReport, ReportRow};
pub use search::{
    FitnessVector, Genome, NashSide, SearchConfig, SearchManifest, SearchReport, StrengthScore,
};
pub use spec::{MixSelection, PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
pub use stream::{
    LeaseCounters, LeaseRecord, ShardScheduler, StreamOptions, StreamReport, SweepManifest,
};
pub use sweep::{
    PlatformAxis, QosAxis, QosPolicy, RmaVariant, ScenarioGrid, ScenarioKey, ScenarioOutcome,
    SweepOptions, SweepResult,
};
pub use sync::{LockUnpoisoned, WaitUnpoisoned};

/// Identifiers of all experiments, in execution order.
pub const ALL_EXPERIMENTS: &[&str] = &["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];

/// Runs one experiment by identifier.
pub fn run_experiment(id: &str, ctx: &ExperimentContext) -> Option<ExperimentReport> {
    match id {
        "e1" => Some(e1_energy_savings::run(ctx)),
        "e2" => Some(e2_model_error::run(ctx)),
        "e3" => Some(e3_qos_relaxation::run(ctx)),
        "e4" => Some(e4_baseline_sensitivity::run(ctx)),
        "e5" => Some(e5_overhead::run(ctx)),
        "e6" => Some(e6_scenario_analysis::run(ctx)),
        "e7" => Some(e7_scenario_savings::run(ctx)),
        "e8" => Some(e8_model_comparison::run(ctx)),
        "e9" => Some(e9_overhead_scaling::run(ctx)),
        "e10" => Some(e10_price_of_anarchy::run(ctx)),
        _ => None,
    }
}
