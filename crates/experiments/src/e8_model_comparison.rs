//! E8 — Paper II model-accuracy comparison (Model 1 / 2 / 3).
//!
//! Paper claim: driving the RM3 scheme with the three performance models of
//! increasing fidelity, the per-interval probability of a QoS violation is
//! 3 % with Model 3 — 32 % lower than Model 2 and 46 % lower than Model 1 —
//! and Model 3 also improves the expected value and standard deviation of the
//! violations (by 49 % and 26 % versus Model 2). The weighted average energy
//! savings are 10 % / 7 % / 5 % with Model 3 / 2 / 1.
//!
//! The experiment is one declarative [`ScenarioSpec`] lowered to a grid:
//! the Paper II 4-core platform with the scenario workloads, strict QoS,
//! and one [`RmaVariant::WithModel`] per performance model.

use crate::context::{mean, ExperimentContext};
use crate::report::{ExperimentReport, ReportRow};
use crate::spec::{MixSelection, PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use crate::sweep::{self, QosAxis, RmaVariant};
use qosrm_core::ModelKind;
use qosrm_types::QosSpec;

/// The three model variants of the study, in presentation order.
const MODELS: [(&str, ModelKind); 3] = [
    ("Model 1 (no overlap)", ModelKind::SimpleLatency),
    ("Model 2 (constant MLP)", ModelKind::ConstantMlp),
    ("Model 3 (MLP-aware)", ModelKind::MlpAware),
];

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e8",
        "Paper II: accuracy of the analytical models — per-interval QoS violations and \
         energy savings of RM3 driven by Model 1, Model 2 and Model 3",
    );

    let spec = ScenarioSpec {
        name: "e8-model-comparison".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "paper2-4c".to_string(),
            platform: PlatformSpec::Paper2 { num_cores: 4 },
            workloads: WorkloadSource::Paper2Scenarios(MixSelection::limit(if ctx.quick {
                3
            } else {
                0
            })),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: MODELS
            .iter()
            .map(|(label, kind)| RmaVariant::WithModel {
                model: *kind,
                control_core_size: true,
                name: format!("RM3-{label}"),
            })
            .collect(),
        options: None,
    };
    let grid = spec.lower().expect("the E8 spec lowers");
    let result = sweep::run(&grid, ctx);

    let axis = &grid.platforms[0];
    let mut summaries = Vec::new();
    for (label, _) in MODELS {
        let variant = format!("RM3-{label}");
        let mut savings = Vec::new();
        let mut probabilities = Vec::new();
        let mut expected_values = Vec::new();
        let mut stds = Vec::new();
        for mix in &axis.mixes {
            let cmp = result.expect_comparison(&axis.label, &mix.name, "strict", &variant);
            savings.push(cmp.energy_savings);
            probabilities.push(cmp.interval_stats.probability());
            expected_values.push(cmp.interval_stats.expected_magnitude());
            stds.push(cmp.interval_stats.std_magnitude);
        }
        report.push_row(
            ReportRow::new(label)
                .with("Avg savings %", mean(&savings) * 100.0)
                .with("Interval violation prob %", mean(&probabilities) * 100.0)
                .with("Expected violation %", mean(&expected_values) * 100.0)
                .with("Violation std %", mean(&stds) * 100.0),
        );
        summaries.push((label, mean(&savings), mean(&probabilities)));
    }

    report.push_summary(format!(
        "Energy savings: {} (paper: Model 3 = 10%, Model 2 = 7%, Model 1 = 5%)",
        summaries
            .iter()
            .map(|(l, s, _)| format!("{l}: {:.1}%", s * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    report.push_summary(format!(
        "Interval violation probability: {} (paper: Model 3 = 3%, lower than Models 1 and 2)",
        summaries
            .iter()
            .map(|(l, _, p)| format!("{l}: {:.1}%", p * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_all_three_models() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.get("Avg savings %").is_some());
            assert!(row.get("Interval violation prob %").is_some());
        }
    }
}
