//! Command-line front end of the experiment pipeline.
//!
//! ```text
//! qosrm-experiments [--quick] [--cache-dir DIR] [--json FILE] [e1 e2 ...]
//! qosrm-experiments sweep run    --spec FILE --out DIR [--quick] [--shard-size N]
//!                                [--max-shards N] [--serial]
//! qosrm-experiments sweep resume --out DIR [--max-shards N] [--serial]
//! qosrm-experiments sweep merge  --out DIR --result FILE
//! qosrm-experiments sweep coordinate --spec FILE --out DIR --addr HOST:PORT
//!                                [--quick] [--shard-size N] [--serial]
//!                                [--lease-ms MS] [--linger-ms MS]
//! qosrm-experiments sweep work   --addr HOST:PORT [--worker NAME]
//!                                [--poll-ms MS] [--shard-delay-ms MS]
//! qosrm-experiments sweep search --out DIR [--seed N] [--generations N]
//!                                [--population N] [--capacity N] [--quick] [--serial]
//! qosrm-experiments diagnose [--mix b1,b2,b3,b4]
//! ```
//!
//! Without a subcommand the paper experiments (E1–E10) run as before:
//! `--quick` uses fewer workloads and a coarser characterization so the
//! whole suite finishes in seconds (used by the smoke tests); the full
//! configuration is what `EXPERIMENTS.md` reports.
//!
//! The `sweep` subcommands drive the streaming executor over a
//! [`experiments::ScenarioSpec`] file: `run` starts a fresh sharded run in
//! an output directory, `resume` continues a killed or partial run
//! (completed scenarios are skipped; the final result is byte-identical to
//! an uninterrupted run), and `merge` folds the shard logs into one
//! `SweepResult` JSON file. `coordinate` serves the same run directory as
//! a lease-granting coordinator and `work` drains one from any number of
//! processes — the distributed pair shares the manifest/shard-log format
//! with `run`/`resume`, so `merge` of a distributed run is byte-identical
//! to a single-process one. `search` grows a Pareto archive of adversarial
//! scenarios via the seeded evolutionary loop in [`experiments::search`];
//! every archived spec replays through `run`/`merge`. `diagnose` dumps
//! RM3's decisions for one workload (formerly the separate `debug_s3`
//! binary).

use experiments::{
    diagnose, dist, run_experiment, search, stream, ExperimentContext, ScenarioSpec, StreamOptions,
    SweepOptions, ALL_EXPERIMENTS,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  qosrm-experiments [--quick] [--cache-dir DIR] [--json FILE] [e1..e10]
  qosrm-experiments sweep run --spec FILE --out DIR [--quick] [--shard-size N] [--max-shards N] [--serial]
  qosrm-experiments sweep resume --out DIR [--max-shards N] [--serial]
  qosrm-experiments sweep merge --out DIR --result FILE
  qosrm-experiments sweep coordinate --spec FILE --out DIR --addr HOST:PORT [--quick] [--shard-size N] [--serial] [--lease-ms MS] [--linger-ms MS]
  qosrm-experiments sweep work --addr HOST:PORT [--worker NAME] [--poll-ms MS] [--shard-delay-ms MS]
  qosrm-experiments sweep search --out DIR [--seed N] [--generations N] [--population N] [--capacity N] [--quick] [--serial]
  qosrm-experiments diagnose [--mix b1,b2,...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("sweep") => sweep_main(&args[1..]),
        Some("diagnose") => diagnose_main(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => return experiments_main(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy experiment mode (no subcommand)
// ---------------------------------------------------------------------------

struct ExperimentArgs {
    quick: bool,
    cache_dir: Option<PathBuf>,
    json_out: Option<PathBuf>,
    experiments: Vec<String>,
}

fn parse_experiment_args(args: &[String]) -> Result<ExperimentArgs, String> {
    let mut parsed = ExperimentArgs {
        quick: false,
        cache_dir: None,
        json_out: None,
        experiments: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--cache-dir" => {
                let dir = iter.next().ok_or("--cache-dir requires a path")?;
                parsed.cache_dir = Some(PathBuf::from(dir));
            }
            "--json" => {
                let path = iter.next().ok_or("--json requires a path")?;
                parsed.json_out = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => parsed.experiments.push(other.to_string()),
        }
    }
    if parsed.experiments.is_empty() {
        parsed.experiments = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    Ok(parsed)
}

fn experiments_main(args: &[String]) -> ExitCode {
    let args = match parse_experiment_args(args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut ctx = ExperimentContext::new(args.quick);
    if let Some(dir) = &args.cache_dir {
        ctx = ctx.with_cache_dir(dir.clone());
    }

    println!(
        "qosrm-experiments: reproducing the paper's evaluation ({} mode)\n",
        if args.quick { "quick" } else { "full" }
    );

    let mut reports = Vec::new();
    for id in &args.experiments {
        match run_experiment(id, &ctx) {
            Some(report) => {
                print!("{}", report.render());
                reports.push(report);
            }
            None => {
                eprintln!("unknown experiment id: {id} (expected one of {ALL_EXPERIMENTS:?})");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &args.json_out {
        match serde_json::to_string_pretty(&reports) {
            Ok(json) => {
                if let Err(err) = std::fs::write(path, json) {
                    eprintln!("failed to write {}: {err}", path.display());
                    return ExitCode::from(1);
                }
                println!("wrote {} reports to {}", reports.len(), path.display());
            }
            Err(err) => {
                eprintln!("failed to serialize reports: {err}");
                return ExitCode::from(1);
            }
        }
    }

    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// sweep run / resume / merge
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SweepArgs {
    spec: Option<PathBuf>,
    out: Option<PathBuf>,
    result: Option<PathBuf>,
    quick: bool,
    serial: bool,
    shard_size: Option<usize>,
    max_shards: usize,
    addr: Option<String>,
    worker: Option<String>,
    lease_ms: Option<u64>,
    linger_ms: Option<u64>,
    poll_ms: Option<u64>,
    shard_delay_ms: Option<u64>,
    seed: Option<u64>,
    generations: Option<usize>,
    population: Option<usize>,
    capacity: Option<usize>,
}

fn parse_sweep_args(args: &[String]) -> Result<SweepArgs, String> {
    let mut parsed = SweepArgs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--spec" => {
                parsed.spec = Some(PathBuf::from(iter.next().ok_or("--spec requires a path")?))
            }
            "--out" => {
                parsed.out = Some(PathBuf::from(iter.next().ok_or("--out requires a path")?))
            }
            "--result" => {
                parsed.result = Some(PathBuf::from(
                    iter.next().ok_or("--result requires a path")?,
                ))
            }
            "--quick" => parsed.quick = true,
            "--serial" => parsed.serial = true,
            "--shard-size" => {
                parsed.shard_size = Some(parse_count(iter.next(), "--shard-size")?);
            }
            "--max-shards" => {
                parsed.max_shards = parse_count(iter.next(), "--max-shards")?;
            }
            "--addr" => {
                parsed.addr = Some(iter.next().ok_or("--addr requires HOST:PORT")?.clone());
            }
            "--worker" => {
                parsed.worker = Some(iter.next().ok_or("--worker requires a name")?.clone());
            }
            "--lease-ms" => {
                parsed.lease_ms = Some(parse_count(iter.next(), "--lease-ms")? as u64);
            }
            "--linger-ms" => {
                parsed.linger_ms = Some(parse_count(iter.next(), "--linger-ms")? as u64);
            }
            "--poll-ms" => {
                parsed.poll_ms = Some(parse_count(iter.next(), "--poll-ms")? as u64);
            }
            "--shard-delay-ms" => {
                parsed.shard_delay_ms = Some(parse_count(iter.next(), "--shard-delay-ms")? as u64);
            }
            "--seed" => {
                parsed.seed = Some(parse_count(iter.next(), "--seed")? as u64);
            }
            "--generations" => {
                parsed.generations = Some(parse_count(iter.next(), "--generations")?);
            }
            "--population" => {
                parsed.population = Some(parse_count(iter.next(), "--population")?);
            }
            "--capacity" => {
                parsed.capacity = Some(parse_count(iter.next(), "--capacity")?);
            }
            other => return Err(format!("unknown sweep flag {other}\n{USAGE}")),
        }
    }
    Ok(parsed)
}

fn parse_count(value: Option<&String>, flag: &str) -> Result<usize, String> {
    value
        .ok_or_else(|| format!("{flag} requires a number"))?
        .parse::<usize>()
        .map_err(|_| format!("{flag} requires a number"))
}

fn stream_options(args: &SweepArgs) -> StreamOptions {
    let mut options = StreamOptions {
        max_shards: args.max_shards,
        ..Default::default()
    };
    if let Some(size) = args.shard_size {
        options.shard_size = size.max(1);
    }
    if args.serial {
        options.sweep = SweepOptions::serial();
    }
    options
}

fn report_progress(report: &experiments::StreamReport, out: &std::path::Path) {
    println!(
        "sweep: {}/{} scenarios complete in {} ({} skipped as already done, {} shard(s) run this \
         call){}",
        report.completed,
        report.total,
        out.display(),
        report.skipped,
        report.shards_run,
        if report.finished {
            "; run `sweep merge` to fold the shards into a result file"
        } else {
            "; run `sweep resume` to continue"
        }
    );
}

fn sweep_main(args: &[String]) -> Result<(), String> {
    let (action, rest) = args
        .split_first()
        .ok_or_else(|| format!("sweep requires an action\n{USAGE}"))?;
    let parsed = parse_sweep_args(rest)?;
    if action == "work" {
        return work_main(&parsed);
    }
    let out = parsed
        .out
        .clone()
        .ok_or_else(|| format!("sweep {action} requires --out DIR\n{USAGE}"))?;
    match action.as_str() {
        "run" => {
            let spec_path = parsed
                .spec
                .clone()
                .ok_or_else(|| format!("sweep run requires --spec FILE\n{USAGE}"))?;
            let spec = ScenarioSpec::load(&spec_path)
                .map_err(|e| format!("failed to load {}: {e}", spec_path.display()))?;
            let ctx = ExperimentContext::new(parsed.quick);
            let report = stream::run(&spec, &ctx, &out, &stream_options(&parsed))
                .map_err(|e| e.to_string())?;
            report_progress(&report, &out);
            Ok(())
        }
        "resume" => {
            if parsed.quick {
                return Err(
                    "sweep resume takes the quick/full mode from the run's manifest; \
                     drop --quick"
                        .to_string(),
                );
            }
            let manifest = experiments::SweepManifest::load(&out)
                .map_err(|e| format!("failed to load the manifest in {}: {e}", out.display()))?;
            let ctx = ExperimentContext::new(manifest.quick);
            let mut options = stream_options(&parsed);
            // Without an explicit --shard-size, keep the run's checkpoint
            // granularity rather than resetting it to the default.
            if parsed.shard_size.is_none() {
                options.shard_size = manifest.shard_size.max(1);
            }
            let report = stream::resume(&ctx, &out, &options).map_err(|e| e.to_string())?;
            report_progress(&report, &out);
            Ok(())
        }
        "merge" => {
            let result_path = parsed
                .result
                .clone()
                .ok_or_else(|| format!("sweep merge requires --result FILE\n{USAGE}"))?;
            let result = stream::merge(&out).map_err(|e| e.to_string())?;
            result.save(&result_path).map_err(|e| e.to_string())?;
            println!(
                "merged {} scenarios from {} into {}",
                result.scenarios.len(),
                out.display(),
                result_path.display()
            );
            Ok(())
        }
        "coordinate" => coordinate_main(&parsed, &out),
        "search" => search_main(&parsed, &out),
        other => Err(format!("unknown sweep action {other}\n{USAGE}")),
    }
}

// ---------------------------------------------------------------------------
// sweep search (Pareto-front scenario search)
// ---------------------------------------------------------------------------

fn search_main(parsed: &SweepArgs, out: &std::path::Path) -> Result<(), String> {
    let mut config = search::SearchConfig::default();
    if let Some(seed) = parsed.seed {
        config.seed = seed;
    }
    if let Some(generations) = parsed.generations {
        config.generations = generations.max(1);
    }
    if let Some(population) = parsed.population {
        config.population = population.max(2);
    }
    if let Some(capacity) = parsed.capacity {
        config.capacity = capacity.max(1);
    }
    let mut ctx = ExperimentContext::new(parsed.quick);
    if parsed.serial {
        ctx = ctx.with_sweep_options(SweepOptions::serial());
    }
    let report = search::run(&config, &ctx, out).map_err(|e| e.to_string())?;
    println!(
        "search: {} generation(s), {} candidate(s) proposed, {} evaluated ({} scenario runs), \
         archive of {} in {}",
        report.generations,
        report.candidates,
        report.evaluations,
        report.scenarios,
        report.archive_size,
        out.display()
    );
    println!(
        "replay any archived spec with `sweep run --spec {}/spec-<id>.json --out DIR` \
         followed by `sweep merge --out DIR --result FILE`",
        out.display()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// sweep coordinate / work (distributed mode)
// ---------------------------------------------------------------------------

fn coordinate_main(parsed: &SweepArgs, out: &std::path::Path) -> Result<(), String> {
    use std::io::Write as _;

    let spec_path = parsed
        .spec
        .clone()
        .ok_or_else(|| format!("sweep coordinate requires --spec FILE\n{USAGE}"))?;
    let addr = parsed
        .addr
        .clone()
        .ok_or_else(|| format!("sweep coordinate requires --addr HOST:PORT\n{USAGE}"))?;
    let spec = ScenarioSpec::load(&spec_path)
        .map_err(|e| format!("failed to load {}: {e}", spec_path.display()))?;
    let config = dist::CoordinatorConfig {
        shard_size: parsed.shard_size.unwrap_or(32).max(1),
        lease_ms: parsed.lease_ms.unwrap_or(10_000).max(100),
        serial: parsed.serial,
        verbose: true,
        ..Default::default()
    };
    let counters = std::sync::Arc::new(experiments::LeaseCounters::default());
    let coordinator = std::sync::Arc::new(
        dist::Coordinator::open(&spec.name, &spec, parsed.quick, out, &config, counters)
            .map_err(|e| e.to_string())?,
    );
    let server = dist::serve_coordinator(&addr, coordinator.clone()).map_err(|e| e.to_string())?;
    // Parseable liveness line (the smoke scripts wait for it). Flushed
    // explicitly: stdout is block-buffered when redirected to a log file.
    println!("coordinating on {}", server.addr());
    std::io::stdout().flush().ok();

    while !coordinator.finished() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    // Linger so workers polling /lease observe `finished` and exit cleanly
    // instead of dying on a refused connection.
    let linger = parsed.linger_ms.unwrap_or(3_000);
    std::thread::sleep(std::time::Duration::from_millis(linger));
    let (completed, total) = coordinator.progress();
    let telemetry = coordinator.telemetry();
    server.stop();
    println!(
        "coordinated {completed}/{total} scenarios in {}",
        out.display()
    );
    println!("{telemetry}");
    println!("run `sweep merge` to fold the shards into a result file");
    Ok(())
}

fn work_main(parsed: &SweepArgs) -> Result<(), String> {
    let addr = parsed
        .addr
        .clone()
        .ok_or_else(|| format!("sweep work requires --addr HOST:PORT\n{USAGE}"))?;
    let mut config = dist::WorkerConfig::default();
    if let Some(worker) = &parsed.worker {
        config.worker = worker.clone();
    }
    if let Some(poll_ms) = parsed.poll_ms {
        config.poll_ms = poll_ms.max(10);
    }
    if let Some(delay) = parsed.shard_delay_ms {
        config.shard_delay_ms = delay;
    }
    let report = dist::run_worker(&addr, &config).map_err(|e| e.to_string())?;
    println!(
        "worker {}: {} shard(s) accepted, {} stale, {} scenario(s) evaluated",
        config.worker, report.shards_completed, report.shards_stale, report.scenarios
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// diagnose
// ---------------------------------------------------------------------------

fn diagnose_main(args: &[String]) -> Result<(), String> {
    let mut mix = diagnose::default_mix();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--mix" => {
                let list = iter.next().ok_or("--mix requires a comma-separated list")?;
                let benchmarks: Vec<&str> = list.split(',').map(str::trim).collect();
                mix = workload::WorkloadMix::new("diagnose", benchmarks);
            }
            other => return Err(format!("unknown diagnose flag {other}\n{USAGE}")),
        }
    }
    let ctx = ExperimentContext::new(true);
    let report = diagnose::run(&ctx, &mix).map_err(|e| e.to_string())?;
    print!("{report}");
    Ok(())
}
