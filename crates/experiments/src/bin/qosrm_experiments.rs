//! Command-line runner that regenerates the paper's evaluation tables.
//!
//! ```text
//! qosrm-experiments [--quick] [--cache-dir DIR] [--json FILE] [e1 e2 ...]
//! ```
//!
//! Without experiment arguments every experiment (E1–E9) is run. `--quick`
//! uses fewer workloads and a coarser characterization so the whole suite
//! finishes in seconds (used by the smoke tests); the full configuration is
//! what `EXPERIMENTS.md` reports.

use experiments::{run_experiment, ExperimentContext, ALL_EXPERIMENTS};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    quick: bool,
    cache_dir: Option<PathBuf>,
    json_out: Option<PathBuf>,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        cache_dir: None,
        json_out: None,
        experiments: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--cache-dir" => {
                let dir = iter.next().ok_or("--cache-dir requires a path")?;
                args.cache_dir = Some(PathBuf::from(dir));
            }
            "--json" => {
                let path = iter.next().ok_or("--json requires a path")?;
                args.json_out = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: qosrm-experiments [--quick] [--cache-dir DIR] [--json FILE] [e1..e9]"
                        .to_string(),
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            other => args.experiments.push(other.to_string()),
        }
    }
    if args.experiments.is_empty() {
        args.experiments = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut ctx = ExperimentContext::new(args.quick);
    if let Some(dir) = &args.cache_dir {
        ctx = ctx.with_cache_dir(dir.clone());
    }

    println!(
        "qosrm-experiments: reproducing the paper's evaluation ({} mode)\n",
        if args.quick { "quick" } else { "full" }
    );

    let mut reports = Vec::new();
    for id in &args.experiments {
        match run_experiment(id, &ctx) {
            Some(report) => {
                print!("{}", report.render());
                reports.push(report);
            }
            None => {
                eprintln!("unknown experiment id: {id} (expected one of {ALL_EXPERIMENTS:?})");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &args.json_out {
        match serde_json::to_string_pretty(&reports) {
            Ok(json) => {
                if let Err(err) = std::fs::write(path, json) {
                    eprintln!("failed to write {}: {err}", path.display());
                    return ExitCode::from(1);
                }
                println!("wrote {} reports to {}", reports.len(), path.display());
            }
            Err(err) => {
                eprintln!("failed to serialize reports: {err}");
                return ExitCode::from(1);
            }
        }
    }

    ExitCode::SUCCESS
}
