//! Diagnostic tool: dump what RM3 decides for one Scenario-3 (streaming)
//! workload and how the ground truth responds. Not part of the experiment
//! suite; kept for calibration work.

use experiments::ExperimentContext;
use qosrm_core::CoordinatedRma;
use qosrm_types::{CoreId, PlatformConfig, QosSpec, ResourceManager, SystemSetting};
use rma_sim::{compare, CophaseSimulator, SimulationOptions};
use simdb::GroundTruth;
use workload::WorkloadMix;

struct Spy {
    inner: CoordinatedRma,
    printed: usize,
}

impl ResourceManager for Spy {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn reset(&mut self, n: usize) {
        self.inner.reset(n);
    }
    fn on_interval(
        &mut self,
        core: CoreId,
        obs: &qosrm_types::CoreObservation,
        current: &SystemSetting,
    ) -> SystemSetting {
        let next = self.inner.on_interval(core, obs, current);
        if self.printed < 12 && next != *current {
            self.printed += 1;
            println!("-- decision after {core} finished an interval:");
            for i in 0..next.num_cores() {
                let c = next.core(CoreId(i));
                println!(
                    "   core{i}: size={} freq_level={} ways={}",
                    c.core_size.index(),
                    c.freq.index(),
                    c.ways
                );
            }
        }
        next
    }
}

fn main() {
    let ctx = ExperimentContext::new(true);
    let platform = PlatformConfig::paper2(4);
    let mix = WorkloadMix::new(
        "S3-debug",
        vec!["libquantum_like", "lbm_like", "milc_like", "leslie3d_like"],
    );
    let db = ctx.database(&platform, std::slice::from_ref(&mix));
    let qos = vec![QosSpec::STRICT; 4];

    // Inspect the libquantum record.
    let gt = GroundTruth::new(&platform);
    let rec = db.benchmark("libquantum_like").unwrap();
    let phase = rec.phase(rec.trace.phase_at(0));
    println!("libquantum_like phase0: mpki(4w)={:.2}", phase.mpki_at(4));
    for size in 0..3usize {
        let m = gt.metrics(
            phase,
            qosrm_types::CoreSizeIdx(size),
            platform.baseline_freq(),
            4,
        );
        println!(
            "  size{size} @baseline f, 4w: time={:.4}s energy={:.4}J mlp={:.2}",
            m.time_seconds,
            m.energy_joules,
            m.llc_misses as f64 / m.leading_misses.max(1) as f64
        );
    }
    // What does the cheapest QoS-meeting config look like per size?
    let base = gt.metrics(
        phase,
        platform.baseline_core_size,
        platform.baseline_freq(),
        4,
    );
    for size in 0..3usize {
        for f in (0..13usize).rev() {
            let m = gt.metrics(
                phase,
                qosrm_types::CoreSizeIdx(size),
                qosrm_types::FreqLevel(f),
                4,
            );
            if m.time_seconds <= base.time_seconds {
                continue;
            }
            // first level that violates; the previous one is the slowest feasible
            let feasible = f + 1;
            if feasible < 13 {
                let m2 = gt.metrics(
                    phase,
                    qosrm_types::CoreSizeIdx(size),
                    qosrm_types::FreqLevel(feasible),
                    4,
                );
                println!(
                    "  size{size}: slowest feasible f-level={} energy={:.4}J (baseline energy {:.4}J)",
                    feasible, m2.energy_joules, base.energy_joules
                );
            } else {
                println!("  size{size}: no feasible frequency at 4 ways");
            }
            break;
        }
    }

    let simulator = CophaseSimulator::new(&db, &mix, SimulationOptions::default()).unwrap();
    let baseline = simulator.run_baseline().unwrap();
    let mut spy = Spy {
        inner: CoordinatedRma::paper2(&platform, qos.clone()),
        printed: 0,
    };
    let managed = simulator.run(&mut spy).unwrap();
    let cmp = compare(&baseline, &managed, &qos);
    println!("energy savings: {:.2}%", cmp.energy_savings * 100.0);
    println!("violations: {}", cmp.num_violations());
    for (i, s) in cmp.per_app_slowdown.iter().enumerate() {
        println!(
            "  app{i}: slowdown {:.2}% energy {:.4} -> {:.4} J",
            s * 100.0,
            baseline.per_app[i].energy_joules,
            managed.per_app[i].energy_joules
        );
    }
    println!("breakdown baseline: {:?}", baseline.energy_breakdown);
    println!("breakdown managed:  {:?}", managed.energy_breakdown);
}
