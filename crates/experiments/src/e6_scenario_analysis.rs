//! E6 — Paper II trade-off analysis over the sixteen pairwise category mixes.
//!
//! Paper claim: comparing RM1 (partitioning only), RM2 (Paper I) and RM3
//! (Paper II) across all 16 combinations of application categories
//! (cache sensitivity × parallelism sensitivity), RM1 is rarely effective and
//! RM3 substantially improves on RM2 in 12 of the 16 mixes.
//!
//! The experiment is one declarative [`ScenarioSpec`] lowered to a grid:
//! the Paper II 4-core platform with the sixteen category mixes, strict
//! QoS, and all three manager variants.

use crate::context::ExperimentContext;
use crate::report::{ExperimentReport, ReportRow};
use crate::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use crate::sweep::{self, QosAxis, RmaVariant};
use qosrm_types::QosSpec;
use workload::paper2_sixteen_mixes;

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e6",
        "Paper II: RM1 / RM2 / RM3 energy savings across the sixteen pairwise category mixes",
    );

    // The category pair of each mix, for the report rows (the spec's
    // Paper2Sixteen source resolves to the same mixes in the same order).
    let all = paper2_sixteen_mixes();
    let selected: Vec<_> = if ctx.quick {
        all.into_iter()
            .take(ExperimentContext::QUICK_WORKLOAD_PREFIX)
            .collect()
    } else {
        all
    };
    let spec = ScenarioSpec {
        name: "e6-scenario-analysis".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "paper2-4c".to_string(),
            platform: PlatformSpec::Paper2 { num_cores: 4 },
            workloads: WorkloadSource::Paper2Sixteen(ctx.quick_mix_selection()),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![
            RmaVariant::PartitioningOnly,
            RmaVariant::Paper1,
            RmaVariant::Paper2,
        ],
        options: None,
    };
    let grid = spec.lower().expect("the E6 spec lowers");
    let result = sweep::run(&grid, ctx);

    let axis = &grid.platforms[0];
    let mut rm3_substantially_better = 0usize;
    for (cat_a, cat_b, mix) in &selected {
        let rm1_cmp = result.expect_comparison(&axis.label, &mix.name, "strict", "RM1");
        let rm2_cmp = result.expect_comparison(&axis.label, &mix.name, "strict", "RM2");
        let rm3_cmp = result.expect_comparison(&axis.label, &mix.name, "strict", "RM3");

        // "Substantially better": at least 2 percentage points more savings.
        if rm3_cmp.energy_savings - rm2_cmp.energy_savings > 0.02 {
            rm3_substantially_better += 1;
        }

        report.push_row(
            ReportRow::new(format!("{}+{}", cat_a.label(), cat_b.label()))
                .with("RM1 savings %", rm1_cmp.energy_savings * 100.0)
                .with("RM2 savings %", rm2_cmp.energy_savings * 100.0)
                .with("RM3 savings %", rm3_cmp.energy_savings * 100.0),
        );
    }

    report.push_summary(format!(
        "RM3 substantially improves on RM2 (> 2 pp) in {} of {} mixes (paper: 12 of 16); \
         RM1 alone is rarely effective",
        rm3_substantially_better,
        axis.mixes.len(),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::mean;

    #[test]
    fn rm3_is_at_least_as_good_as_rm1_on_average() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        let rm1: Vec<f64> = report
            .rows
            .iter()
            .filter_map(|r| r.get("RM1 savings %"))
            .collect();
        let rm3: Vec<f64> = report
            .rows
            .iter()
            .filter_map(|r| r.get("RM3 savings %"))
            .collect();
        assert!(!rm3.is_empty());
        assert!(mean(&rm3) >= mean(&rm1) - 0.5);
    }
}
