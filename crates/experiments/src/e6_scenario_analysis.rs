//! E6 — Paper II trade-off analysis over the sixteen pairwise category mixes.
//!
//! Paper claim: comparing RM1 (partitioning only), RM2 (Paper I) and RM3
//! (Paper II) across all 16 combinations of application categories
//! (cache sensitivity × parallelism sensitivity), RM1 is rarely effective and
//! RM3 substantially improves on RM2 in 12 of the 16 mixes.

use crate::context::ExperimentContext;
use crate::report::{ExperimentReport, ReportRow};
use qosrm_core::CoordinatedRma;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::SimulationOptions;
use workload::paper2_sixteen_mixes;

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e6",
        "Paper II: RM1 / RM2 / RM3 energy savings across the sixteen pairwise category mixes",
    );

    let platform = PlatformConfig::paper2(4);
    let all = paper2_sixteen_mixes();
    let selected: Vec<_> = if ctx.quick {
        all.into_iter().take(4).collect()
    } else {
        all
    };
    let mixes: Vec<_> = selected.iter().map(|(_, _, m)| m.clone()).collect();
    let db = ctx.database(&platform, &mixes);
    let qos = vec![QosSpec::STRICT; 4];
    let options = SimulationOptions::default();

    let mut rm3_substantially_better = 0usize;
    for ((cat_a, cat_b, _), mix) in selected.iter().zip(mixes.iter()) {
        let mut rm1 = CoordinatedRma::partitioning_only(&platform, qos.clone());
        let rm1_cmp = ctx.comparison(&db, mix, &mut rm1, &qos, options.clone());
        let mut rm2 = CoordinatedRma::paper1(&platform, qos.clone());
        let rm2_cmp = ctx.comparison(&db, mix, &mut rm2, &qos, options.clone());
        let mut rm3 = CoordinatedRma::paper2(&platform, qos.clone());
        let rm3_cmp = ctx.comparison(&db, mix, &mut rm3, &qos, options.clone());

        // "Substantially better": at least 2 percentage points more savings.
        if rm3_cmp.energy_savings - rm2_cmp.energy_savings > 0.02 {
            rm3_substantially_better += 1;
        }

        report.push_row(
            ReportRow::new(format!("{}+{}", cat_a.label(), cat_b.label()))
                .with("RM1 savings %", rm1_cmp.energy_savings * 100.0)
                .with("RM2 savings %", rm2_cmp.energy_savings * 100.0)
                .with("RM3 savings %", rm3_cmp.energy_savings * 100.0),
        );
    }

    report.push_summary(format!(
        "RM3 substantially improves on RM2 (> 2 pp) in {} of {} mixes (paper: 12 of 16); \
         RM1 alone is rarely effective",
        rm3_substantially_better,
        mixes.len(),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::mean;

    #[test]
    fn rm3_is_at_least_as_good_as_rm1_on_average() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        let rm1: Vec<f64> = report.rows.iter().filter_map(|r| r.get("RM1 savings %")).collect();
        let rm3: Vec<f64> = report.rows.iter().filter_map(|r| r.get("RM3 savings %")).collect();
        assert!(!rm3.is_empty());
        assert!(mean(&rm3) >= mean(&rm1) - 0.5);
    }
}
