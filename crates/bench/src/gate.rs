//! The CI performance-regression gate.
//!
//! [`bench_gate`](../../bench_gate/index.html) (the `bench_gate` binary) runs
//! eight fixed, deterministic workloads — the co-phase simulator loop on a
//! quick-grid workload, the global way-partition optimizer on a synthetic
//! curve set, cold-cache energy-curve construction on real observations,
//! the game-theoretic best-response/equilibrium solvers on the synthetic
//! curves, an in-process `qosrm_serve` daemon under a fixed submission
//! mix, the SIMD-shaped kernels (chunked min-plus convolution vs the
//! pruned scalar path, and the incremental delta-path manager vs a cold
//! rebuild), a distributed sweep (in-process coordinator + wire
//! workers) over a fixed spec, and a fixed-seed Pareto scenario search —
//! and emits machine-readable reports:
//!
//! * `BENCH_simulator.json` — wall time, event count and events/second of the
//!   simulator loop;
//! * `BENCH_global_opt.json` — wall time, call count and min-plus convolution
//!   operations of the global optimizer;
//! * `BENCH_local_opt.json` — wall time of cold (uncached) curve
//!   construction through the staged `CurveBuilder`, the scalar reference's
//!   wall time on the same inputs, their speedup ratio (gated at
//!   [`MIN_LOCAL_OPT_SPEEDUP`]) and the builder's exact model-evaluation
//!   count (exact-compared like every deterministic counter);
//! * `BENCH_best_response.json` — wall time of the iterated-best-response
//!   solver and the pure-Nash equilibrium enumeration, with their exact
//!   round / evaluation / candidate counters;
//! * `BENCH_serve.json` — wall time of a fixed concurrent submission mix
//!   against an in-process serving daemon on an ephemeral port, with the
//!   exact admission / streaming / curve-cache counters its `/stats`
//!   endpoint reports (specs admitted per second, outcomes streamed per
//!   second, cache hit rate);
//! * `BENCH_kernels.json` — wall time of the 4-wide-chunked min-plus
//!   convolution against the preserved pruned scalar kernel on identical
//!   synthetic curve sets (their same-process speedup ratio gated at
//!   [`MIN_CHUNKED_CONV_SPEEDUP`]), and of the incremental delta-path
//!   `CoordinatedRma` against a cold-rebuild manager on the identical
//!   interval schedule, with the exact convolution / curve-build / reuse
//!   counters of both paths;
//! * `BENCH_dist.json` — wall time of a fixed spec drained by an in-process
//!   lease coordinator plus four wire workers on an ephemeral port, the
//!   wall time of the same spec through the single-process streaming
//!   executor, and the exact lease-protocol counters (granted / renewed /
//!   expired / reinjected / stale / completed) of the distributed run;
//! * `BENCH_search.json` — wall time of a fixed-seed `experiments::search`
//!   evolutionary run (3 generations over the quick grid), with the exact
//!   generation / candidate / evaluation / scenario-run / archive-size
//!   counters; the bench also asserts the persisted archive manifest is
//!   byte-identical across repetitions, so seed determinism is enforced on
//!   every CI run.
//!
//! In check mode (the default, what CI runs) the fresh reports are written to
//! `target/bench-gate/` and compared against the baselines committed at the
//! repository root; the process exits non-zero when wall time regresses by
//! more than the tolerance (20% by default) or when a deterministic counter
//! (events, convolution ops) drifts without a baseline refresh. In
//! `--update` mode the fresh reports overwrite the committed baselines.
//!
//! Wall times are **calibration normalized** before comparison: every run
//! also times a fixed pure-CPU calibration loop and records its throughput
//! in the report, and the checker rescales the fresh wall time by the ratio
//! of the two calibration throughputs. A committed baseline therefore
//! transfers between machines (a CI runner half as fast as the laptop that
//! recorded the baseline sees its wall times halved before the tolerance
//! test), so the band measures the code, not the hardware.

use experiments::dist::{self, Coordinator, CoordinatorConfig, WorkerConfig};
use experiments::spec::{PlatformAxisSpec, PlatformSpec, WorkloadSource};
use experiments::{
    stream, ExperimentContext, LeaseCounters, QosAxis, RmaVariant, ScenarioSpec, StreamOptions,
};
use qosrm_core::{
    best_response, min_energy_equilibrium, optimize_partition_with_stats, CoordinatedRma,
    CurveCache, CurvePoint, EnergyCurve, GameConfig, GameStats, LocalOptimizer,
    LocalOptimizerConfig, ModelKind, PruneStats,
};
use qosrm_serve::{
    execute as serve_execute, plan as serve_plan, Client, LoadConfig, ServeConfig, Server,
};
use qosrm_types::{
    CoreId, CoreObservation, CoreSizeIdx, FreqLevel, PlatformConfig, QosSpec, ResourceManager,
    SystemSetting,
};
use rma_sim::{CophaseSimulator, SimulationOptions};
use serde::{Deserialize, Serialize};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::{paper1_workloads, MixPopulation, SynthSpec};

/// Schema tag embedded in every report so downstream tooling can detect
/// format changes.
pub const SCHEMA: &str = "qosrm-bench-gate/v1";

/// Default relative wall-time regression tolerated before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Minimum speedup of the staged `CurveBuilder` over the scalar reference on
/// the cold-curve workload. Both sides are timed in the same process on the
/// same machine, so the ratio needs no calibration normalization.
pub const MIN_LOCAL_OPT_SPEEDUP: f64 = 3.0;

/// Iterations of the calibration loop (sized for tens of milliseconds).
const CALIBRATION_ITERS: u64 = 40_000_000;

/// Measures a fixed pure-CPU workload (xorshift + float accumulate) and
/// returns its throughput in iterations/second. The workload is identical
/// on every machine, so the ratio of two calibration throughputs estimates
/// the single-thread speed ratio of the machines that produced them —
/// which is what [`compare_simulator`]/[`compare_global_opt`] use to
/// normalize wall times measured on different hardware.
pub fn calibrate() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut acc = 0.0f64;
        let start = Instant::now();
        for _ in 0..CALIBRATION_ITERS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += (x & 0xffff) as f64;
        }
        // The accumulator must escape *before* the clock is read so the
        // compiler cannot sink the loop out of the timed region.
        std::hint::black_box(acc);
        let wall = start.elapsed().as_secs_f64();
        best = best.min(wall);
    }
    CALIBRATION_ITERS as f64 / best.max(f64::MIN_POSITIVE)
}

/// Report of the simulator-loop benchmark (`BENCH_simulator.json`).
///
/// Two sub-benchmarks share the fixed quick-grid workload: `loop_*` drives
/// the event loop under the no-op baseline manager (the simulator loop in
/// isolation — the number the 'simulator speedup' headline refers to), and
/// `managed_*` runs strict and 30%-relaxed RM2 with a warm shared curve
/// cache (the production sweep configuration), covering the observation and
/// reconfiguration paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulatorReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Benchmark identifier (`"simulator"`).
    pub bench: String,
    /// Human-readable description of the fixed workload.
    pub workload: String,
    /// Measured repetitions of the workload (best time is reported).
    pub repetitions: usize,
    /// Best wall time of one baseline-manager repetition, in seconds.
    pub loop_wall_seconds: f64,
    /// Global events per baseline-manager repetition (deterministic).
    pub loop_events: u64,
    /// Events per second of the isolated simulator loop.
    pub loop_events_per_sec: f64,
    /// Best wall time of one managed repetition, in seconds.
    pub managed_wall_seconds: f64,
    /// Global events per managed repetition (deterministic).
    pub managed_events: u64,
    /// Events per second of the managed configuration.
    pub managed_events_per_sec: f64,
    /// Throughput of the fixed calibration loop on the measuring machine
    /// (used to normalize wall times across machines).
    pub calibration_ops_per_sec: f64,
}

/// Report of the global-optimizer benchmark (`BENCH_global_opt.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalOptReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Benchmark identifier (`"global_opt"`).
    pub bench: String,
    /// Human-readable description of the fixed curve set.
    pub workload: String,
    /// Measured repetitions of the call set (best time is reported).
    pub repetitions: usize,
    /// Best wall time of one repetition, in seconds.
    pub wall_seconds: f64,
    /// `optimize_partition` calls per repetition.
    pub calls: u64,
    /// Min-plus convolution candidate evaluations per repetition
    /// (deterministic; drops when lower-bound pruning improves).
    pub convolution_ops: u64,
    /// Split candidates skipped by lower-bound pruning per repetition.
    pub pruned_ops: u64,
    /// Convolution operations per second at the best wall time.
    pub ops_per_sec: f64,
    /// Throughput of the fixed calibration loop on the measuring machine
    /// (used to normalize wall times across machines).
    pub calibration_ops_per_sec: f64,
}

/// Report of the cold-path local-optimizer benchmark
/// (`BENCH_local_opt.json`): energy-curve construction with no memoization
/// cache, i.e. the cost of every cache-miss RMA invocation in a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalOptReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Benchmark identifier (`"local_opt"`).
    pub bench: String,
    /// Human-readable description of the fixed observation/config set.
    pub workload: String,
    /// Measured repetitions of the curve set (best time is reported).
    pub repetitions: usize,
    /// Best wall time of one repetition through the staged builder, in
    /// seconds (the gated number).
    pub builder_wall_seconds: f64,
    /// Best wall time of the scalar reference on the identical inputs.
    pub scalar_wall_seconds: f64,
    /// `scalar_wall_seconds / builder_wall_seconds` (same process, same
    /// machine); must stay at or above [`MIN_LOCAL_OPT_SPEEDUP`].
    pub speedup: f64,
    /// Curves constructed per repetition (deterministic).
    pub curves_built: u64,
    /// Model evaluations the builder performed per repetition
    /// (deterministic; exact-compared — a drift means the builder's pruning
    /// or the workload changed).
    pub evaluations: u64,
    /// Curves per second through the builder at the best wall time.
    pub curves_per_sec: f64,
    /// Throughput of the fixed calibration loop on the measuring machine
    /// (used to normalize wall times across machines).
    pub calibration_ops_per_sec: f64,
}

/// The fixed quick-grid workload driven through the simulator loop:
/// two 4-core Paper I mixes, each under the baseline manager, strict RM2 and
/// 30%-relaxed RM2.
fn simulator_workload() -> (PlatformConfig, Vec<workload::WorkloadMix>) {
    let platform = PlatformConfig::paper1(4);
    let mixes: Vec<_> = paper1_workloads(4).into_iter().take(2).collect();
    (platform, mixes)
}

/// Baseline-manager rounds per loop repetition (sized so one repetition is
/// long enough to time reliably on a shared CI runner).
const LOOP_ROUNDS: usize = 300;
/// Managed rounds per managed repetition.
const MANAGED_ROUNDS: usize = 5;

/// Runs the simulator-loop benchmark. `calibration_ops_per_sec` is the
/// machine's [`calibrate`] measurement, recorded in the report so later
/// checks can normalize across machines.
pub fn run_simulator_bench(repetitions: usize, calibration_ops_per_sec: f64) -> SimulatorReport {
    let (platform, mixes) = simulator_workload();
    let db = build_database_for_mixes(&platform, &mixes, &BuildOptions::quick_for_tests(&platform));
    let options = SimulationOptions {
        provide_mlp_profiles: false,
        ..Default::default()
    };
    let sims: Vec<CophaseSimulator> = mixes
        .iter()
        .map(|mix| CophaseSimulator::new(&db, mix, options.clone()).expect("fixed workload"))
        .collect();

    // Part 1: the event loop in isolation (no-op baseline manager).
    let run_loop = || -> u64 {
        let mut events = 0u64;
        for _ in 0..LOOP_ROUNDS {
            for sim in &sims {
                let baseline = sim.run_baseline().expect("baseline within event budget");
                events += baseline.rma_invocations;
            }
        }
        events
    };

    // Part 2: managed runs with a warm shared energy-curve cache, as the
    // production sweep engine executes them: the warm-up repetition fills
    // the cache, so the measured repetitions exercise the simulator's
    // observation and reconfiguration paths rather than the manager's model
    // evaluations. The (deterministic) baseline runs are computed once
    // outside the timed region so they cannot dilute the managed signal.
    let curve_cache = Arc::new(CurveCache::default());
    let baselines: Vec<_> = sims
        .iter()
        .map(|sim| sim.run_baseline().expect("baseline within event budget"))
        .collect();
    let run_managed = || -> u64 {
        let mut events = 0u64;
        for _ in 0..MANAGED_ROUNDS {
            for (sim, baseline) in sims.iter().zip(&baselines) {
                for qos in [QosSpec::STRICT, QosSpec::relaxed_by(0.3)] {
                    let qos = vec![qos; platform.num_cores];
                    let mut manager = CoordinatedRma::paper1(&platform, qos.clone())
                        .with_curve_cache(curve_cache.clone());
                    let (_, managed) = sim
                        .run_comparison(&mut manager, baseline, &qos)
                        .expect("managed run within event budget");
                    events += managed.rma_invocations;
                }
            }
        }
        events
    };

    // Warm-up runs (page cache, branch predictors, curve cache), then
    // best-of-N for each part.
    let loop_events = run_loop();
    let mut loop_best = f64::INFINITY;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let run_events = run_loop();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            run_events, loop_events,
            "simulator loop must be deterministic"
        );
        loop_best = loop_best.min(wall);
    }
    let managed_events = run_managed();
    let mut managed_best = f64::INFINITY;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let run_events = run_managed();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            run_events, managed_events,
            "managed runs must be deterministic"
        );
        managed_best = managed_best.min(wall);
    }

    SimulatorReport {
        schema: SCHEMA.to_string(),
        bench: "simulator".to_string(),
        workload: format!(
            "paper1-4c quick grid, 2 mixes: loop = {LOOP_ROUNDS}x baseline; managed = \
             {MANAGED_ROUNDS}x (RM2-strict + RM2-relaxed30, warm curve cache)"
        ),
        repetitions: repetitions.max(1),
        loop_wall_seconds: loop_best,
        loop_events,
        loop_events_per_sec: loop_events as f64 / loop_best.max(f64::MIN_POSITIVE),
        managed_wall_seconds: managed_best,
        managed_events,
        managed_events_per_sec: managed_events as f64 / managed_best.max(f64::MIN_POSITIVE),
        calibration_ops_per_sec,
    }
}

/// Deterministic synthetic curve set exercising concave, flat, bumpy
/// (non-concave) and partially infeasible shapes.
fn synthetic_curves(cores: usize, ways: usize) -> Vec<EnergyCurve> {
    (0..cores)
        .map(|c| {
            let infeasible_prefix = c % 3;
            let base = 6.0 + c as f64 * 1.3;
            let slope = 0.15 + 0.08 * (c % 4) as f64;
            EnergyCurve::new(
                (1..=ways)
                    .map(|w| {
                        if w <= infeasible_prefix {
                            return None;
                        }
                        let bump = if c % 3 == 0 {
                            ((w * (c + 2)) % 5) as f64 * 0.12
                        } else {
                            0.0
                        };
                        Some(CurvePoint {
                            energy_joules: (base - slope * w as f64 + bump).max(0.05),
                            freq: FreqLevel(w % 13),
                            core_size: CoreSizeIdx(w % 3),
                            time_seconds: 0.05,
                            ways: w,
                        })
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Runs the global-optimizer benchmark. `calibration_ops_per_sec` is the
/// machine's [`calibrate`] measurement, recorded in the report so later
/// checks can normalize across machines.
pub fn run_global_opt_bench(repetitions: usize, calibration_ops_per_sec: f64) -> GlobalOptReport {
    let cases: Vec<(Vec<EnergyCurve>, usize)> = [(4, 16), (8, 16), (8, 32), (16, 32)]
        .into_iter()
        .map(|(cores, ways)| (synthetic_curves(cores, ways), ways))
        .collect();
    const CALLS_PER_CASE: usize = 200;

    let run_once = || -> (u64, PruneStats) {
        let mut calls = 0u64;
        let mut stats = PruneStats::default();
        for (curves, ways) in &cases {
            for _ in 0..CALLS_PER_CASE {
                let (result, s) = optimize_partition_with_stats(curves, *ways);
                assert!(result.is_some(), "synthetic curve set must be feasible");
                stats.ops += s.ops;
                stats.pruned += s.pruned;
                calls += 1;
            }
        }
        (calls, stats)
    };

    let (calls, stats) = run_once();
    let mut best = f64::INFINITY;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let (run_calls, run_stats) = run_once();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(run_calls, calls);
        assert_eq!(
            run_stats.ops, stats.ops,
            "convolution must be deterministic"
        );
        best = best.min(wall);
    }

    GlobalOptReport {
        schema: SCHEMA.to_string(),
        bench: "global_opt".to_string(),
        workload: "synthetic curves: (cores, ways) in {(4,16),(8,16),(8,32),(16,32)} x 200 calls"
            .to_string(),
        repetitions: repetitions.max(1),
        wall_seconds: best,
        calls,
        convolution_ops: stats.ops,
        pruned_ops: stats.pruned,
        ops_per_sec: stats.ops as f64 / best.max(f64::MIN_POSITIVE),
        calibration_ops_per_sec,
    }
}

/// Rounds of the full observation/config set per cold-curve repetition,
/// sized so one builder repetition lasts several milliseconds — comparable
/// to the other gated workloads — because the gated speedup *ratio* must be
/// stable on a noisy shared CI runner, not just the wall time.
const LOCAL_OPT_ROUNDS: usize = 240;

/// Runs the cold-path local-optimizer benchmark: the fixed observation set
/// (first-phase observations of the four quick-grid benchmarks) crossed
/// with the RM2 and RM3 optimizer configurations and strict / 30%-relaxed
/// QoS, every curve built cold (no memoization cache). The scalar reference
/// runs the identical inputs so the report carries the builder's speedup.
pub fn run_local_opt_bench(repetitions: usize, calibration_ops_per_sec: f64) -> LocalOptReport {
    run_local_opt_bench_with_rounds(repetitions, calibration_ops_per_sec, LOCAL_OPT_ROUNDS)
}

/// [`run_local_opt_bench`] with an explicit round count (tests use a small
/// one so the determinism check stays fast in debug builds).
fn run_local_opt_bench_with_rounds(
    repetitions: usize,
    calibration_ops_per_sec: f64,
    rounds: usize,
) -> LocalOptReport {
    let platform = PlatformConfig::paper2(4);
    let mix = crate::default_mix();
    let db = crate::build_db(&platform, &mix);
    let observations: Vec<CoreObservation> = mix
        .benchmarks
        .iter()
        .enumerate()
        .map(|(core, name)| crate::observation_for(&db, &platform, name, core))
        .collect();
    let optimizers: Vec<LocalOptimizer> = [
        // RM2: DVFS + ways with the constant-MLP model.
        (ModelKind::ConstantMlp, false),
        // RM3: core size + DVFS + ways with the MLP-aware model.
        (ModelKind::MlpAware, true),
    ]
    .into_iter()
    .map(|(model, control_core_size)| {
        LocalOptimizer::new(
            &platform,
            LocalOptimizerConfig {
                control_dvfs: true,
                control_core_size,
                model,
                energy_params: power_model::EnergyParams::default(),
            },
        )
    })
    .collect();
    let qos_levels = [QosSpec::STRICT, QosSpec::relaxed_by(0.3)];

    let run_builder = || -> (u64, u64) {
        let mut curves = 0u64;
        let mut evaluations = 0u64;
        for _ in 0..rounds {
            for optimizer in &optimizers {
                for observation in &observations {
                    for &qos in &qos_levels {
                        let build = optimizer.energy_curve_counted(observation, qos);
                        evaluations += build.evaluations as u64;
                        curves += 1;
                        std::hint::black_box(&build.curve);
                    }
                }
            }
        }
        (curves, evaluations)
    };
    let run_scalar = || {
        for _ in 0..rounds {
            for optimizer in &optimizers {
                for observation in &observations {
                    for &qos in &qos_levels {
                        std::hint::black_box(
                            optimizer.energy_curve_scalar_reference(observation, qos),
                        );
                    }
                }
            }
        }
    };

    // Warm-up, then best-of-N for each path.
    let (curves_built, evaluations) = run_builder();
    let mut builder_best = f64::INFINITY;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let counters = run_builder();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            counters,
            (curves_built, evaluations),
            "curve construction must be deterministic"
        );
        builder_best = builder_best.min(wall);
    }
    run_scalar();
    let mut scalar_best = f64::INFINITY;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        run_scalar();
        scalar_best = scalar_best.min(start.elapsed().as_secs_f64());
    }

    LocalOptReport {
        schema: SCHEMA.to_string(),
        bench: "local_opt".to_string(),
        workload: format!(
            "cold energy curves: 4 quick-grid observations x (RM2 + RM3 optimizer) x \
             (strict + relaxed30) x {rounds} rounds, no curve cache"
        ),
        repetitions: repetitions.max(1),
        builder_wall_seconds: builder_best,
        scalar_wall_seconds: scalar_best,
        speedup: scalar_best / builder_best.max(f64::MIN_POSITIVE),
        curves_built,
        evaluations,
        curves_per_sec: curves_built as f64 / builder_best.max(f64::MIN_POSITIVE),
        calibration_ops_per_sec,
    }
}

/// Report of the game-theoretic solver benchmark
/// (`BENCH_best_response.json`): the iterated-best-response solver over
/// the synthetic curve sets, plus the pure-Nash equilibrium enumeration on
/// the 4-core set (enumeration is combinatorial in the core count, so the
/// gate pins it at the size E10 actually uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BestResponseReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Benchmark identifier (`"best_response"`).
    pub bench: String,
    /// Human-readable description of the fixed curve sets.
    pub workload: String,
    /// Measured repetitions of the call set (best time is reported).
    pub repetitions: usize,
    /// Best wall time of one repetition, in seconds.
    pub wall_seconds: f64,
    /// `best_response` calls per repetition.
    pub br_calls: u64,
    /// `min_energy_equilibrium` calls per repetition.
    pub eq_calls: u64,
    /// Best-response rounds per repetition (deterministic).
    pub rounds: u64,
    /// Single-core energy evaluations per repetition (deterministic).
    pub evaluations: u64,
    /// Equilibrium candidates examined per repetition (deterministic).
    pub equilibria_examined: u64,
    /// Solver operations (evaluations + candidates) per second at the best
    /// wall time.
    pub ops_per_sec: f64,
    /// Throughput of the fixed calibration loop on the measuring machine
    /// (used to normalize wall times across machines).
    pub calibration_ops_per_sec: f64,
}

/// `best_response` calls per curve set and repetition.
const BR_CALLS_PER_CASE: usize = 1000;
/// `min_energy_equilibrium` calls per curve set and repetition.
const EQ_CALLS_PER_CASE: usize = 300;

/// Runs the game-theoretic solver benchmark. `calibration_ops_per_sec` is
/// the machine's [`calibrate`] measurement, recorded in the report so later
/// checks can normalize across machines.
pub fn run_best_response_bench(
    repetitions: usize,
    calibration_ops_per_sec: f64,
) -> BestResponseReport {
    run_best_response_bench_with_calls(
        repetitions,
        calibration_ops_per_sec,
        BR_CALLS_PER_CASE,
        EQ_CALLS_PER_CASE,
    )
}

/// [`run_best_response_bench`] with explicit call counts (tests use small
/// ones so the determinism check stays fast in debug builds).
fn run_best_response_bench_with_calls(
    repetitions: usize,
    calibration_ops_per_sec: f64,
    br_calls_per_case: usize,
    eq_calls_per_case: usize,
) -> BestResponseReport {
    // Best response scales to every synthetic set the global bench uses;
    // equilibrium enumeration runs on the E10-sized 4-core set only.
    let br_cases: Vec<(Vec<EnergyCurve>, usize)> = [(4, 16), (8, 16), (8, 32), (16, 32)]
        .into_iter()
        .map(|(cores, ways)| (synthetic_curves(cores, ways), ways))
        .collect();
    let eq_cases: Vec<(Vec<EnergyCurve>, usize)> = [(4, 16)]
        .into_iter()
        .map(|(cores, ways)| (synthetic_curves(cores, ways), ways))
        .collect();

    let run_once = || -> (u64, u64, GameStats) {
        let mut br_calls = 0u64;
        let mut eq_calls = 0u64;
        let mut stats = GameStats::default();
        for (curves, ways) in &br_cases {
            for _ in 0..br_calls_per_case {
                let (outcome, s) = best_response(curves, *ways, &GameConfig::default());
                assert!(outcome.is_some(), "synthetic curve set must be feasible");
                std::hint::black_box(&outcome);
                stats.rounds += s.rounds;
                stats.evaluations += s.evaluations;
                br_calls += 1;
            }
        }
        for (curves, ways) in &eq_cases {
            for _ in 0..eq_calls_per_case {
                let (outcome, s) = min_energy_equilibrium(curves, *ways);
                assert!(outcome.is_some(), "an equilibrium must exist");
                std::hint::black_box(&outcome);
                stats.equilibria_examined += s.equilibria_examined;
                eq_calls += 1;
            }
        }
        (br_calls, eq_calls, stats)
    };

    // Warm-up, then best-of-N with exact determinism checks.
    let (br_calls, eq_calls, stats) = run_once();
    let mut best = f64::INFINITY;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let (run_br, run_eq, run_stats) = run_once();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!((run_br, run_eq), (br_calls, eq_calls));
        assert_eq!(run_stats, stats, "game solvers must be deterministic");
        best = best.min(wall);
    }

    BestResponseReport {
        schema: SCHEMA.to_string(),
        bench: "best_response".to_string(),
        workload: format!(
            "synthetic curves: best response on (cores, ways) in \
             {{(4,16),(8,16),(8,32),(16,32)}} x {br_calls_per_case} calls; equilibrium \
             selection on (4,16) x {eq_calls_per_case} calls"
        ),
        repetitions: repetitions.max(1),
        wall_seconds: best,
        br_calls,
        eq_calls,
        rounds: stats.rounds,
        evaluations: stats.evaluations,
        equilibria_examined: stats.equilibria_examined,
        ops_per_sec: (stats.evaluations + stats.equilibria_examined) as f64
            / best.max(f64::MIN_POSITIVE),
        calibration_ops_per_sec,
    }
}

/// Report of the serving-throughput benchmark (`BENCH_serve.json`): a fixed
/// concurrent submission mix against an in-process `qosrm_serve` daemon on
/// an ephemeral port.
///
/// The daemon runs one worker with serial in-run evaluation and memoization
/// on, so every counter its `/stats` endpoint reports is deterministic
/// regardless of admission interleaving: each distinct spec is admitted
/// exactly once (the rest deduplicate), each curve key misses exactly once
/// whichever run looks it up first, and every streaming tail sees its run's
/// full outcome count. Those counters are exact-compared like the other
/// gated workloads; the wall time of the submission mix (cold daemon,
/// including the quick database builds its runs trigger) is
/// calibration-banded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Benchmark identifier (`"serve"`).
    pub bench: String,
    /// Human-readable description of the fixed submission mix.
    pub workload: String,
    /// Measured repetitions of the mix (best time is reported; each
    /// repetition uses a fresh daemon and data directory).
    pub repetitions: usize,
    /// Best wall time of one repetition (submission through last merged
    /// result fetch), in seconds.
    pub wall_seconds: f64,
    /// Spec submissions the daemon received per repetition (deterministic).
    pub specs_submitted: u64,
    /// Distinct runs admitted and completed per repetition (deterministic;
    /// the remaining submissions deduplicate).
    pub runs_executed: u64,
    /// Scenario outcomes persisted across all runs per repetition
    /// (deterministic).
    pub outcomes_total: u64,
    /// Outcome lines written to `/stream` tails per repetition
    /// (deterministic).
    pub outcomes_streamed: u64,
    /// Curve-cache hits of the daemon's quick-mode context per repetition
    /// (deterministic: one worker, serial runs, memoization on, no
    /// eviction).
    pub cache_hits: u64,
    /// Curve-cache misses per repetition (deterministic: each distinct
    /// curve key misses exactly once).
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`.
    pub cache_hit_rate: f64,
    /// Submissions answered per second at the best wall time.
    pub specs_per_sec: f64,
    /// Outcomes streamed per second at the best wall time.
    pub outcomes_per_sec: f64,
    /// Throughput of the fixed calibration loop on the measuring machine
    /// (used to normalize wall times across machines).
    pub calibration_ops_per_sec: f64,
}

/// The base spec of the serving benchmark: a 4-core Paper I platform with
/// three synthetic mixes, strict QoS, the Paper I manager — 3 scenarios per
/// run, sharded one scenario per shard so every run exercises the
/// manifest/shard-log persistence path the daemon serves from.
fn serve_bench_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "serve-bench".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "p4".to_string(),
            platform: PlatformSpec::Paper1 { num_cores: 4 },
            workloads: WorkloadSource::Synth(SynthSpec {
                seed: 1717,
                count: 3,
                num_cores: 4,
                population: MixPopulation::Mixed,
                name_prefix: "sb-".to_string(),
            }),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1],
        options: Some(SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        }),
    }
}

/// Client threads of the fixed submission mix.
const SERVE_CLIENTS: usize = 6;
/// Submissions per client thread.
const SERVE_PER_CLIENT: usize = 4;
/// Distinct spec variants the submissions cycle over.
const SERVE_DISTINCT: usize = 8;

/// Runs the serving-throughput benchmark. `calibration_ops_per_sec` is the
/// machine's [`calibrate`] measurement, recorded in the report so later
/// checks can normalize across machines.
pub fn run_serve_bench(repetitions: usize, calibration_ops_per_sec: f64) -> ServeReport {
    run_serve_bench_with_load(
        repetitions,
        calibration_ops_per_sec,
        SERVE_CLIENTS,
        SERVE_PER_CLIENT,
        SERVE_DISTINCT,
    )
}

/// [`run_serve_bench`] with an explicit submission mix (tests use a small
/// one so the determinism check stays fast in debug builds).
fn run_serve_bench_with_load(
    repetitions: usize,
    calibration_ops_per_sec: f64,
    clients: usize,
    per_client: usize,
    distinct: usize,
) -> ServeReport {
    let load = LoadConfig {
        clients,
        per_client,
        distinct,
        seed: 2024,
        quick: true,
        shard_size: 1,
    };
    let plan = serve_plan(&serve_bench_spec(), &load).expect("fixed spec must lower");

    let mut counters: Option<(u64, u64, u64, u64, u64, u64)> = None;
    let mut best = f64::INFINITY;
    for repetition in 0..repetitions.max(1) {
        let dir = std::env::temp_dir().join(format!(
            "qosrm-bench-serve-{}-{repetition}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: dir.clone(),
            workers: 1,
            default_shard_size: 1,
            serial: true,
            poll_interval_ms: 5,
            ..Default::default()
        })
        .expect("in-process daemon must start on an ephemeral port");
        let addr = server.addr();

        let start = Instant::now();
        let (report, _results) = serve_execute(addr, &plan, &load, Duration::from_secs(600));
        let wall = start.elapsed().as_secs_f64();
        assert!(
            report.passed(),
            "serve bench load must pass: {:?}",
            report.errors
        );
        assert_eq!(
            report.queue_full_rejections, 0,
            "the fixed mix must fit the admission bound"
        );

        let client = Client::new(addr);
        let stats = client.stats().expect("stats endpoint must answer");
        let outcomes_total: u64 = client
            .list()
            .expect("run listing must answer")
            .iter()
            .map(|run| run.completed_scenarios as u64)
            .sum();
        let quick_cache = stats
            .curve_cache
            .iter()
            .find(|c| c.mode == "quick")
            .expect("quick-mode curve cache must be active");
        let run_counters = (
            stats.counters.submissions,
            stats.counters.runs_completed,
            outcomes_total,
            stats.counters.outcomes_streamed,
            quick_cache.hits,
            quick_cache.misses,
        );
        assert_eq!(
            quick_cache.evictions, 0,
            "the fixed mix must fit the curve cache"
        );
        match counters {
            None => counters = Some(run_counters),
            Some(reference) => assert_eq!(
                run_counters, reference,
                "serving counters must be deterministic across repetitions"
            ),
        }
        best = best.min(wall);

        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    let (submissions, runs_completed, outcomes_total, outcomes_streamed, hits, misses) =
        counters.expect("at least one repetition ran");
    ServeReport {
        schema: SCHEMA.to_string(),
        bench: "serve".to_string(),
        workload: format!(
            "in-process daemon (1 worker, serial runs, shared quick curve cache), cold per \
             repetition: {clients} clients x {per_client} submissions cycling {distinct} \
             variants of a paper1-4c 3-mix synth spec, shard size 1"
        ),
        repetitions: repetitions.max(1),
        wall_seconds: best,
        specs_submitted: submissions,
        runs_executed: runs_completed,
        outcomes_total,
        outcomes_streamed,
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_rate: hits as f64 / ((hits + misses) as f64).max(1.0),
        specs_per_sec: submissions as f64 / best.max(f64::MIN_POSITIVE),
        outcomes_per_sec: outcomes_streamed as f64 / best.max(f64::MIN_POSITIVE),
        calibration_ops_per_sec,
    }
}

/// Report of the distributed-sweep benchmark (`BENCH_dist.json`): a fixed
/// spec drained by an in-process lease [`Coordinator`] serving wire workers
/// on an ephemeral port, against the same spec through the single-process
/// streaming executor.
///
/// Both sides share one warm quick-mode context (the databases are built in
/// an untimed warm-up), so the walls measure coordination overhead plus
/// evaluation, not database construction. The lease counters are
/// deterministic — the lease is far longer than the run, so every shard is
/// granted exactly once and nothing expires, is reinjected, renewed or
/// rejected — and exact-compared like every other gated counter. The merged
/// distributed result is asserted byte-identical to the single-process
/// merge on every repetition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Benchmark identifier (`"dist"`).
    pub bench: String,
    /// Human-readable description of the fixed spec and worker fleet.
    pub workload: String,
    /// Measured repetitions (best times are reported; each repetition uses
    /// fresh run directories).
    pub repetitions: usize,
    /// Best wall time of one coordinated repetition (coordinator open
    /// through last worker exit), in seconds — the gated number.
    pub wall_seconds: f64,
    /// Best wall time of the single-process streaming run of the same spec
    /// (run through merge), in seconds.
    pub single_wall_seconds: f64,
    /// Wire workers draining the coordinator.
    pub workers: u64,
    /// Shards of the fixed spec (deterministic).
    pub shards: u64,
    /// Scenarios of the fixed spec (deterministic).
    pub scenarios_total: u64,
    /// Leases granted per coordinated repetition (deterministic: one per
    /// shard, nothing expires).
    pub leases_granted: u64,
    /// Leases renewed per repetition (deterministic: 0 — the lease is far
    /// longer than the heartbeat interval needs).
    pub leases_renewed: u64,
    /// Leases expired per repetition (deterministic: 0).
    pub leases_expired: u64,
    /// Shards reinjected per repetition (deterministic: 0).
    pub shards_reinjected: u64,
    /// Stale completions rejected per repetition (deterministic: 0).
    pub stale_completions: u64,
    /// Shard completions accepted per repetition (deterministic: one per
    /// shard).
    pub shards_completed: u64,
    /// Scenarios per second through the coordinated path at the best wall.
    pub scenarios_per_sec: f64,
    /// Throughput of the fixed calibration loop on the measuring machine
    /// (used to normalize wall times across machines).
    pub calibration_ops_per_sec: f64,
}

/// The fixed spec of the distributed benchmark: a 4-core Paper I platform,
/// `mixes` synthetic mixes, strict QoS, both manager variants — `2 * mixes`
/// scenarios, sharded one scenario per shard so the lease protocol round-
/// trips once per scenario.
fn dist_bench_spec(mixes: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: "dist-bench".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "p4".to_string(),
            platform: PlatformSpec::Paper1 { num_cores: 4 },
            workloads: WorkloadSource::Synth(SynthSpec {
                seed: 4242,
                count: mixes,
                num_cores: 4,
                population: MixPopulation::Mixed,
                name_prefix: "db-".to_string(),
            }),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1, RmaVariant::Paper2],
        options: Some(SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        }),
    }
}

/// Wire workers of the fixed distributed benchmark.
const DIST_WORKERS: usize = 4;
/// Synthetic mixes of the fixed distributed benchmark (scenarios = 2x).
const DIST_MIXES: usize = 4;

/// Runs the distributed-sweep benchmark. `calibration_ops_per_sec` is the
/// machine's [`calibrate`] measurement, recorded in the report so later
/// checks can normalize across machines.
pub fn run_dist_bench(repetitions: usize, calibration_ops_per_sec: f64) -> DistReport {
    run_dist_bench_with(
        repetitions,
        calibration_ops_per_sec,
        DIST_WORKERS,
        DIST_MIXES,
    )
}

/// Per-repetition deterministic counters of the dist bench, in order:
/// shards, scenarios, granted, renewed, expired, reinjected, stale,
/// completed. Compared exactly across repetitions.
type DistCounters = (u64, u64, u64, u64, u64, u64, u64, u64);

/// [`run_dist_bench`] with an explicit fleet and spec size (tests use a
/// small one so the determinism check stays fast in debug builds).
fn run_dist_bench_with(
    repetitions: usize,
    calibration_ops_per_sec: f64,
    workers: usize,
    mixes: usize,
) -> DistReport {
    let spec = dist_bench_spec(mixes);
    let ctx = Arc::new(ExperimentContext::new(true));
    let base = std::env::temp_dir().join(format!("qosrm-bench-dist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Untimed warm-up: builds the quick databases (disk + in-context
    // caches) so the timed walls on both sides measure evaluation and
    // coordination, not database construction.
    let warm_dir = base.join("warm");
    stream::run(
        &spec,
        &ctx,
        &warm_dir,
        &StreamOptions {
            shard_size: 1,
            ..Default::default()
        },
    )
    .expect("warm-up run completes");

    let mut counters_ref: Option<DistCounters> = None;
    let mut best_dist = f64::INFINITY;
    let mut best_single = f64::INFINITY;
    for repetition in 0..repetitions.max(1) {
        // Single-process side: the streaming executor, one shard per
        // scenario, run through merge.
        let single_dir = base.join(format!("single-{repetition}"));
        let start = Instant::now();
        let report = stream::run(
            &spec,
            &ctx,
            &single_dir,
            &StreamOptions {
                shard_size: 1,
                ..Default::default()
            },
        )
        .expect("single-process run completes");
        let single_result = stream::merge(&single_dir).expect("single-process run merges");
        best_single = best_single.min(start.elapsed().as_secs_f64());
        assert!(report.finished);

        // Distributed side: coordinator on an ephemeral port, `workers`
        // wire workers sharing the warm context, timed from coordinator
        // open through the last worker's exit.
        let dist_dir = base.join(format!("dist-{repetition}"));
        let lease_counters = Arc::new(LeaseCounters::default());
        let config = CoordinatorConfig {
            shard_size: 1,
            // Far longer than the run: no expiry, reinjection or renewal,
            // so the lease counters are exactly comparable.
            lease_ms: 600_000,
            ..Default::default()
        };
        let start = Instant::now();
        let coordinator = Arc::new(
            Coordinator::open(
                "dist-bench",
                &spec,
                true,
                &dist_dir,
                &config,
                lease_counters,
            )
            .expect("coordinator opens"),
        );
        let server = dist::serve_coordinator("127.0.0.1:0", coordinator.clone())
            .expect("coordinator listener binds");
        let addr = server.addr().to_string();
        let reports: Vec<dist::WorkerReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers.max(1))
                .map(|i| {
                    let addr = addr.clone();
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let config = WorkerConfig {
                            worker: format!("bench-w{i}"),
                            poll_ms: 10,
                            ..Default::default()
                        };
                        dist::run_worker_with(&addr, &config, &mut |_| ctx.clone())
                            .expect("worker drains the coordinator")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread joins"))
                .collect()
        });
        best_dist = best_dist.min(start.elapsed().as_secs_f64());
        server.stop();
        assert!(coordinator.finished());

        let merged = stream::merge(&dist_dir).expect("distributed run merges");
        assert_eq!(
            serde_json::to_string(&merged).expect("results serialize"),
            serde_json::to_string(&single_result).expect("results serialize"),
            "the distributed merge must be byte-identical to the single-process run"
        );

        let telemetry = coordinator.telemetry();
        let (completed, total) = coordinator.progress();
        let shards: u64 = reports.iter().map(|r| r.shards_completed).sum();
        assert_eq!(completed, total, "every scenario must complete");
        let run_counters = (
            shards,
            total as u64,
            telemetry.granted,
            telemetry.renewed,
            telemetry.expired,
            telemetry.reinjected,
            telemetry.stale_rejected,
            telemetry.completed,
        );
        match counters_ref {
            None => counters_ref = Some(run_counters),
            Some(reference) => assert_eq!(
                run_counters, reference,
                "lease counters must be deterministic across repetitions"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&base);

    let (shards, scenarios_total, granted, renewed, expired, reinjected, stale, completed) =
        counters_ref.expect("at least one repetition ran");
    DistReport {
        schema: SCHEMA.to_string(),
        bench: "dist".to_string(),
        workload: format!(
            "in-process coordinator + {workers} wire workers on an ephemeral port (shared warm \
             quick context, lease 600s) vs the single-process streaming executor: paper1-4c \
             {mixes}-mix synth spec x {{Paper1, Paper2}}, shard size 1"
        ),
        repetitions: repetitions.max(1),
        wall_seconds: best_dist,
        single_wall_seconds: best_single,
        workers: workers.max(1) as u64,
        shards,
        scenarios_total,
        leases_granted: granted,
        leases_renewed: renewed,
        leases_expired: expired,
        shards_reinjected: reinjected,
        stale_completions: stale,
        shards_completed: completed,
        scenarios_per_sec: scenarios_total as f64 / best_dist.max(f64::MIN_POSITIVE),
        calibration_ops_per_sec,
    }
}

/// Report of the Pareto-front scenario-search benchmark
/// (`BENCH_search.json`): a fixed-seed [`experiments::search`] run — the
/// full evolutionary loop of genome proposal, sweep evaluation, Pareto
/// Strength selection and archive persistence — against a warm quick-mode
/// context.
///
/// The search is deterministic per seed, so generations, candidates,
/// evaluations, scenario runs and the final archive size are exact-compared
/// like every gated counter, and the archive manifest bytes are asserted
/// identical across repetitions in-bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchBenchReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Benchmark identifier (`"search"`).
    pub bench: String,
    /// Human-readable description of the fixed search configuration.
    pub workload: String,
    /// Measured repetitions (the best wall is reported; each repetition
    /// writes a fresh archive directory).
    pub repetitions: usize,
    /// Best wall time of one full search run (generation loop through
    /// archive persistence), in seconds — the gated number.
    pub wall_seconds: f64,
    /// Generations per run (deterministic).
    pub generations: u64,
    /// Candidate genomes proposed per run (deterministic).
    pub candidates: u64,
    /// Distinct sweep evaluations per run (deterministic: duplicates of an
    /// already evaluated genome are cache hits, not re-runs).
    pub evaluations: u64,
    /// Scenarios simulated across all evaluations per run (deterministic).
    pub scenarios_evaluated: u64,
    /// Final archive size per run (deterministic).
    pub archive_size: u64,
    /// Scenario evaluations per second at the best wall.
    pub scenarios_per_sec: f64,
    /// Throughput of the fixed calibration loop on the measuring machine
    /// (used to normalize wall times across machines).
    pub calibration_ops_per_sec: f64,
}

/// The fixed configuration of the search benchmark.
fn search_bench_config() -> experiments::SearchConfig {
    experiments::SearchConfig {
        seed: 4242,
        generations: 3,
        population: 5,
        capacity: 5,
        max_mixes: 2,
        name: "bench".to_string(),
    }
}

/// Runs the scenario-search benchmark. `calibration_ops_per_sec` is the
/// machine's [`calibrate`] measurement, recorded in the report so later
/// checks can normalize across machines.
pub fn run_search_bench(repetitions: usize, calibration_ops_per_sec: f64) -> SearchBenchReport {
    run_search_bench_with(repetitions, calibration_ops_per_sec, &search_bench_config())
}

/// [`run_search_bench`] with an explicit configuration (tests use a
/// smaller one so the determinism check stays fast in debug builds).
fn run_search_bench_with(
    repetitions: usize,
    calibration_ops_per_sec: f64,
    config: &experiments::SearchConfig,
) -> SearchBenchReport {
    let ctx = ExperimentContext::new(true);
    let base = std::env::temp_dir().join(format!(
        "qosrm-bench-search-{}-{}",
        std::process::id(),
        config.seed
    ));
    let _ = std::fs::remove_dir_all(&base);

    // Untimed warm-up: the search is deterministic, so one run touches
    // exactly the databases the timed repetitions need — the walls then
    // measure the search loop and sweep evaluation, not database
    // construction.
    experiments::search::run(config, &ctx, &base.join("warm")).expect("warm-up search runs");

    let mut best_wall = f64::INFINITY;
    let mut report_ref: Option<experiments::SearchReport> = None;
    let mut manifest_ref: Option<Vec<u8>> = None;
    for repetition in 0..repetitions.max(1) {
        let dir = base.join(format!("rep-{repetition}"));
        let start = Instant::now();
        let report = experiments::search::run(config, &ctx, &dir).expect("search runs");
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        let manifest = std::fs::read(dir.join(experiments::search::MANIFEST_FILE))
            .expect("archive manifest exists");
        match (&report_ref, &manifest_ref) {
            (None, _) => {
                report_ref = Some(report);
                manifest_ref = Some(manifest);
            }
            (Some(reference), Some(manifest_reference)) => {
                assert_eq!(
                    &report, reference,
                    "search counters must be deterministic across repetitions"
                );
                assert_eq!(
                    &manifest, manifest_reference,
                    "the archive manifest must be byte-identical across repetitions"
                );
            }
            _ => unreachable!("references are set together"),
        }
    }
    let _ = std::fs::remove_dir_all(&base);

    let report = report_ref.expect("at least one repetition ran");
    SearchBenchReport {
        schema: SCHEMA.to_string(),
        bench: "search".to_string(),
        workload: format!(
            "seeded Pareto-front scenario search (seed {}, {} generations x {} candidates, \
             capacity {}, warm quick context): genome proposal, sweep evaluation, Pareto \
             Strength selection, archive persistence",
            config.seed, config.generations, config.population, config.capacity
        ),
        repetitions: repetitions.max(1),
        wall_seconds: best_wall,
        generations: report.generations as u64,
        candidates: report.candidates,
        evaluations: report.evaluations,
        scenarios_evaluated: report.scenarios,
        archive_size: report.archive_size as u64,
        scenarios_per_sec: report.scenarios as f64 / best_wall.max(f64::MIN_POSITIVE),
        calibration_ops_per_sec,
    }
}

/// Report of the SIMD-shaped kernel benchmark (`BENCH_kernels.json`).
///
/// Two sub-benchmarks cover the tentpole kernels: `chunked_*`/`scalar_*`
/// time the 4-wide-chunked min-plus convolution against the preserved
/// pruned scalar path on identical synthetic curve sets (both in one
/// process, so the gated `conv_speedup` ratio needs no calibration
/// normalization), and `cold_*`/`delta_*` time a cold-rebuild
/// [`CoordinatedRma`] against an incremental one over the identical
/// interval schedule, exact-comparing how many curves each actually built.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelsReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Benchmark identifier (`"kernels"`).
    pub bench: String,
    /// Human-readable description of the fixed workloads.
    pub workload: String,
    /// Measured repetitions of each workload (best time is reported).
    pub repetitions: usize,
    /// Best wall time of one chunked-kernel convolution repetition.
    pub chunked_wall_seconds: f64,
    /// Best wall time of the pruned scalar kernel on identical inputs.
    pub scalar_wall_seconds: f64,
    /// `scalar_wall_seconds / chunked_wall_seconds` (same process, same
    /// machine); must stay at or above [`MIN_CHUNKED_CONV_SPEEDUP`].
    pub conv_speedup: f64,
    /// Candidate evaluations per convolution repetition (deterministic;
    /// identical for both kernels by construction).
    pub convolution_ops: u64,
    /// Candidates skipped by pruning per repetition (deterministic).
    pub pruned_ops: u64,
    /// Full 4-wide chunk passes per chunked repetition (deterministic;
    /// the scalar kernel reports zero).
    pub chunked_lanes: u64,
    /// Best wall time of the cold-rebuild manager schedule.
    pub cold_wall_seconds: f64,
    /// Best wall time of the incremental manager on the same schedule.
    pub delta_wall_seconds: f64,
    /// Curves the cold manager built over the schedule (deterministic).
    pub cold_curve_builds: u64,
    /// Curves the incremental manager built (deterministic; the in-bench
    /// assertion holds it strictly below `cold_curve_builds`).
    pub delta_curve_builds: u64,
    /// Invocations the incremental manager settled via digest reuse
    /// (deterministic).
    pub delta_invocations: u64,
    /// Warm arena rows the incremental optimizer reused (deterministic).
    pub warm_rows_reused: u64,
    /// Throughput of the fixed calibration loop on the measuring machine
    /// (used to normalize wall times across machines).
    pub calibration_ops_per_sec: f64,
}

/// Minimum speedup of the chunked min-plus convolution kernel over the
/// preserved pruned scalar path on the fixed synthetic curve sets. Both
/// sides run in the same process, so the ratio needs no calibration
/// normalization.
pub const MIN_CHUNKED_CONV_SPEEDUP: f64 = 1.3;

/// Convolution calls per synthetic case and kernel repetition.
const KERNEL_CALLS_PER_CASE: usize = 100;
/// Interval rounds of the cold-vs-incremental manager schedule.
const KERNEL_DELTA_ROUNDS: usize = 24;

/// Runs the SIMD-shaped kernel benchmark. `calibration_ops_per_sec` is the
/// machine's [`calibrate`] measurement, recorded in the report so later
/// checks can normalize across machines.
pub fn run_kernels_bench(repetitions: usize, calibration_ops_per_sec: f64) -> KernelsReport {
    run_kernels_bench_with(
        repetitions,
        calibration_ops_per_sec,
        KERNEL_CALLS_PER_CASE,
        KERNEL_DELTA_ROUNDS,
    )
}

/// [`run_kernels_bench`] with explicit workload sizes (tests use small ones
/// so the determinism check stays fast in debug builds).
fn run_kernels_bench_with(
    repetitions: usize,
    calibration_ops_per_sec: f64,
    calls_per_case: usize,
    delta_rounds: usize,
) -> KernelsReport {
    // --- Chunked vs pruned-scalar min-plus convolution -------------------
    // Wide rows (up to 64 ways) and deep reductions (up to 32 cores) so
    // the 4-wide chunk arithmetic amortizes the way a production-size
    // partition call does.
    let cases: Vec<(Vec<EnergyCurve>, usize)> = [(16, 32), (16, 64), (32, 64)]
        .into_iter()
        .map(|(cores, ways)| (synthetic_curves(cores, ways), ways))
        .collect();

    let run_chunked = || -> PruneStats {
        let mut stats = PruneStats::default();
        for (curves, ways) in &cases {
            for _ in 0..calls_per_case {
                let (result, s) = optimize_partition_with_stats(curves, *ways);
                assert!(result.is_some(), "synthetic curve set must be feasible");
                stats.ops += s.ops;
                stats.pruned += s.pruned;
                stats.lanes += s.lanes;
                std::hint::black_box(&result);
            }
        }
        stats
    };
    let run_scalar = || -> PruneStats {
        let mut stats = PruneStats::default();
        for (curves, ways) in &cases {
            for _ in 0..calls_per_case {
                let (result, s) = qosrm_core::optimize_partition_scalar(curves, *ways);
                assert!(result.is_some(), "synthetic curve set must be feasible");
                stats.ops += s.ops;
                stats.pruned += s.pruned;
                stats.lanes += s.lanes;
                std::hint::black_box(&result);
            }
        }
        stats
    };

    // The kernels must agree bit for bit — results and prune bookkeeping.
    for (curves, ways) in &cases {
        let (chunked, cs) = optimize_partition_with_stats(curves, *ways);
        let (scalar, ss) = qosrm_core::optimize_partition_scalar(curves, *ways);
        assert_eq!(chunked, scalar, "kernels must be bit-identical");
        assert_eq!((cs.ops, cs.pruned), (ss.ops, ss.pruned));
    }

    // Warm-up doubles as the two-repetition determinism assertion the gate
    // relies on: the counters it exact-compares must be byte-identical
    // across runs in the same process.
    let conv_stats = run_chunked();
    let second = run_chunked();
    assert_eq!(
        serde_json::to_string(&(conv_stats.ops, conv_stats.pruned, conv_stats.lanes)).unwrap(),
        serde_json::to_string(&(second.ops, second.pruned, second.lanes)).unwrap(),
        "chunked convolution counters must be byte-identical across repetitions"
    );
    let scalar_stats = run_scalar();
    assert_eq!(scalar_stats.ops, conv_stats.ops);
    assert_eq!(scalar_stats.pruned, conv_stats.pruned);
    assert_eq!(scalar_stats.lanes, 0, "scalar kernel runs no chunk passes");
    // The speedup ratio is the quantity under the gate's floor, so the two
    // kernels are timed in *interleaved* pairs (rather than back-to-back
    // blocks) with extra repetitions: slow drift from a noisy neighbour
    // then inflates both sides of a pair alike, and best-of picks the
    // cleanest window for each kernel independently.
    let conv_reps = repetitions.max(1) * 6;
    let mut chunked_best = f64::INFINITY;
    let mut scalar_best = f64::INFINITY;
    for _ in 0..conv_reps {
        let start = Instant::now();
        let s = run_chunked();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            (s.ops, s.pruned, s.lanes),
            (conv_stats.ops, conv_stats.pruned, conv_stats.lanes)
        );
        chunked_best = chunked_best.min(wall);
        let start = Instant::now();
        let s = run_scalar();
        scalar_best = scalar_best.min(start.elapsed().as_secs_f64());
        assert_eq!(s.ops, conv_stats.ops);
    }

    // --- Cold vs incremental manager schedule ----------------------------
    // Two observations per core from a real quick database; every round
    // one core's observation toggles while the other three recur, which is
    // the phase-stable pattern the digest diff is built for.
    let platform = PlatformConfig::paper1(4);
    let mix_a = crate::default_mix();
    let mix_b = workload::WorkloadMix::new(
        "bench-mix-b",
        vec!["povray_like", "mcf_like", "gamess_like", "soplex_like"],
    );
    let db = build_database_for_mixes(
        &platform,
        &[mix_a.clone(), mix_b.clone()],
        &BuildOptions::quick_for_tests(&platform),
    );
    let obs_a: Vec<CoreObservation> = mix_a
        .benchmarks
        .iter()
        .enumerate()
        .map(|(core, name)| crate::observation_for(&db, &platform, name, core))
        .collect();
    let obs_b: Vec<CoreObservation> = mix_b
        .benchmarks
        .iter()
        .enumerate()
        .map(|(core, name)| crate::observation_for(&db, &platform, name, core))
        .collect();
    let num_cores = obs_a.len();

    let run_manager = |incremental: bool| -> (qosrm_core::RmaWorkCounters, f64) {
        let mut manager = CoordinatedRma::paper1(&platform, vec![QosSpec::STRICT; num_cores]);
        if incremental {
            manager = manager.with_incremental();
        }
        let mut setting = SystemSetting::baseline(&platform);
        let start = Instant::now();
        let mut use_b = vec![false; num_cores];
        for round in 0..delta_rounds {
            if round > 0 {
                let toggled = round % num_cores;
                use_b[toggled] = !use_b[toggled];
            }
            for core in 0..num_cores {
                let obs = if use_b[core] {
                    &obs_b[core]
                } else {
                    &obs_a[core]
                };
                setting = manager.on_interval(CoreId(core), obs, &setting);
            }
        }
        let wall = start.elapsed().as_secs_f64();
        std::hint::black_box(&setting);
        (manager.work_counters(), wall)
    };

    // Bit-identity of the two paths over the schedule, checked in lockstep.
    {
        let mut cold = CoordinatedRma::paper1(&platform, vec![QosSpec::STRICT; num_cores]);
        let mut delta =
            CoordinatedRma::paper1(&platform, vec![QosSpec::STRICT; num_cores]).with_incremental();
        let mut cold_setting = SystemSetting::baseline(&platform);
        let mut delta_setting = SystemSetting::baseline(&platform);
        let mut use_b = vec![false; num_cores];
        for round in 0..delta_rounds {
            if round > 0 {
                let toggled = round % num_cores;
                use_b[toggled] = !use_b[toggled];
            }
            for core in 0..num_cores {
                let obs = if use_b[core] {
                    &obs_b[core]
                } else {
                    &obs_a[core]
                };
                cold_setting = cold.on_interval(CoreId(core), obs, &cold_setting);
                delta_setting = delta.on_interval(CoreId(core), obs, &delta_setting);
                assert_eq!(
                    delta_setting, cold_setting,
                    "delta path diverged at round {round}, core {core}"
                );
            }
        }
    }

    // Warm-up plus the two-repetition byte-identical-counter assertion.
    let (cold_counters, _) = run_manager(false);
    let (delta_counters, _) = run_manager(true);
    let (cold_again, _) = run_manager(false);
    let (delta_again, _) = run_manager(true);
    assert_eq!(
        serde_json::to_string(&cold_counters).unwrap(),
        serde_json::to_string(&cold_again).unwrap(),
        "cold manager counters must be byte-identical across repetitions"
    );
    assert_eq!(
        serde_json::to_string(&delta_counters).unwrap(),
        serde_json::to_string(&delta_again).unwrap(),
        "incremental manager counters must be byte-identical across repetitions"
    );
    assert!(
        delta_counters.curve_builds < cold_counters.curve_builds,
        "digest diffing must cut curve builds ({} vs {})",
        delta_counters.curve_builds,
        cold_counters.curve_builds
    );
    assert!(delta_counters.delta_invocations > 0);
    assert!(delta_counters.warm_rows_reused > 0);
    // A single schedule pass is a few hundred microseconds — far too close
    // to scheduler jitter for a tolerance gate — so each timing sample is a
    // batch of passes, interleaved cold/delta like the convolution pairs.
    const MANAGER_TIMING_PASSES: usize = 25;
    let mut cold_best = f64::INFINITY;
    let mut delta_best = f64::INFINITY;
    for _ in 0..repetitions.max(1) * 2 {
        let mut cold_wall = 0.0;
        let mut delta_wall = 0.0;
        for _ in 0..MANAGER_TIMING_PASSES {
            let (c, w) = run_manager(false);
            assert_eq!(c, cold_counters);
            cold_wall += w;
            let (d, w) = run_manager(true);
            assert_eq!(d, delta_counters);
            delta_wall += w;
        }
        cold_best = cold_best.min(cold_wall);
        delta_best = delta_best.min(delta_wall);
    }

    KernelsReport {
        schema: SCHEMA.to_string(),
        bench: "kernels".to_string(),
        workload: format!(
            "chunked vs pruned-scalar convolution: synthetic curves (cores, ways) in \
             {{(16,32),(16,64),(32,64)}} x {calls_per_case} calls; cold vs incremental \
             CoordinatedRma: paper1-4c, {delta_rounds} rounds, one toggled core per round"
        ),
        repetitions: repetitions.max(1),
        chunked_wall_seconds: chunked_best,
        scalar_wall_seconds: scalar_best,
        conv_speedup: scalar_best / chunked_best.max(f64::MIN_POSITIVE),
        convolution_ops: conv_stats.ops,
        pruned_ops: conv_stats.pruned,
        chunked_lanes: conv_stats.lanes,
        cold_wall_seconds: cold_best,
        delta_wall_seconds: delta_best,
        cold_curve_builds: cold_counters.curve_builds,
        delta_curve_builds: delta_counters.curve_builds,
        delta_invocations: delta_counters.delta_invocations,
        warm_rows_reused: delta_counters.warm_rows_reused,
        calibration_ops_per_sec,
    }
}

/// Outcome of comparing one fresh report against its committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateOutcome {
    /// Within tolerance.
    Pass,
    /// Wall time regressed beyond the tolerance band.
    WallRegression(String),
    /// A deterministic counter drifted, which means the workload itself
    /// changed and the baseline must be refreshed deliberately.
    CounterDrift(String),
}

/// Compares a fresh wall time against a baseline wall time, normalizing by
/// the two machines' calibration throughputs (`new * new_calib / old_calib`
/// re-expresses the fresh measurement in baseline-machine seconds).
fn check_wall(
    name: &str,
    new: f64,
    old: f64,
    new_calib: f64,
    old_calib: f64,
    tolerance: f64,
) -> GateOutcome {
    let scale = if new_calib > 0.0 && old_calib > 0.0 {
        new_calib / old_calib
    } else {
        1.0
    };
    let normalized = new * scale;
    if normalized > old * (1.0 + tolerance) {
        GateOutcome::WallRegression(format!(
            "{name}: wall time regressed {:.1}% (baseline {:.4}s, now {:.4}s normalized \
             ({:.4}s raw, machine-speed ratio {:.2}), tolerance {:.0}%)",
            (normalized / old - 1.0) * 100.0,
            old,
            normalized,
            new,
            scale,
            tolerance * 100.0
        ))
    } else {
        GateOutcome::Pass
    }
}

fn check_counter(name: &str, counter: &str, new: u64, old: u64) -> GateOutcome {
    if new != old {
        GateOutcome::CounterDrift(format!(
            "{name}: {counter} changed from {old} to {new}; if intentional, refresh the \
             baseline with `cargo run --release -p qosrm-bench --bin bench_gate -- --update`"
        ))
    } else {
        GateOutcome::Pass
    }
}

/// Compares a fresh simulator report against the committed baseline.
pub fn compare_simulator(
    new: &SimulatorReport,
    baseline: &SimulatorReport,
    tolerance: f64,
) -> Vec<GateOutcome> {
    vec![
        check_wall(
            "simulator loop",
            new.loop_wall_seconds,
            baseline.loop_wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_wall(
            "simulator managed",
            new.managed_wall_seconds,
            baseline.managed_wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_counter(
            "simulator",
            "loop_events",
            new.loop_events,
            baseline.loop_events,
        ),
        check_counter(
            "simulator",
            "managed_events",
            new.managed_events,
            baseline.managed_events,
        ),
    ]
}

/// Compares a fresh global-optimizer report against the committed baseline.
pub fn compare_global_opt(
    new: &GlobalOptReport,
    baseline: &GlobalOptReport,
    tolerance: f64,
) -> Vec<GateOutcome> {
    vec![
        check_wall(
            "global_opt",
            new.wall_seconds,
            baseline.wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_counter(
            "global_opt",
            "convolution_ops",
            new.convolution_ops,
            baseline.convolution_ops,
        ),
    ]
}

/// Compares a fresh local-optimizer report against the committed baseline.
/// The builder/scalar speedup is additionally held to
/// [`MIN_LOCAL_OPT_SPEEDUP`] — a same-machine ratio, so it is checked on the
/// fresh report alone.
pub fn compare_local_opt(
    new: &LocalOptReport,
    baseline: &LocalOptReport,
    tolerance: f64,
) -> Vec<GateOutcome> {
    let mut outcomes = vec![
        check_wall(
            "local_opt builder",
            new.builder_wall_seconds,
            baseline.builder_wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_counter(
            "local_opt",
            "curves_built",
            new.curves_built,
            baseline.curves_built,
        ),
        check_counter(
            "local_opt",
            "evaluations",
            new.evaluations,
            baseline.evaluations,
        ),
    ];
    if new.speedup < MIN_LOCAL_OPT_SPEEDUP {
        outcomes.push(GateOutcome::WallRegression(format!(
            "local_opt: builder speedup over the scalar reference dropped to {:.2}x \
             (required ≥ {MIN_LOCAL_OPT_SPEEDUP:.1}x; builder {:.4}s vs scalar {:.4}s)",
            new.speedup, new.builder_wall_seconds, new.scalar_wall_seconds
        )));
    }
    outcomes
}

/// Compares a fresh game-solver report against the committed baseline. The
/// round / evaluation / candidate counters are exact-compared: a drift
/// means the solvers' orbits or the workload changed, which must be a
/// deliberate baseline refresh.
pub fn compare_best_response(
    new: &BestResponseReport,
    baseline: &BestResponseReport,
    tolerance: f64,
) -> Vec<GateOutcome> {
    vec![
        check_wall(
            "best_response",
            new.wall_seconds,
            baseline.wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_counter("best_response", "rounds", new.rounds, baseline.rounds),
        check_counter(
            "best_response",
            "evaluations",
            new.evaluations,
            baseline.evaluations,
        ),
        check_counter(
            "best_response",
            "equilibria_examined",
            new.equilibria_examined,
            baseline.equilibria_examined,
        ),
    ]
}

/// Compares a fresh serving report against the committed baseline. The
/// admission / streaming / cache counters are exact-compared — the daemon's
/// single-worker serial configuration makes them independent of thread
/// interleaving, so a drift means the protocol, the load plan, or the
/// memoization behaviour changed and the baseline must be refreshed
/// deliberately. The wall time of the submission mix is
/// calibration-banded like every other gated workload.
pub fn compare_serve(
    new: &ServeReport,
    baseline: &ServeReport,
    tolerance: f64,
) -> Vec<GateOutcome> {
    vec![
        check_wall(
            "serve",
            new.wall_seconds,
            baseline.wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_counter(
            "serve",
            "specs_submitted",
            new.specs_submitted,
            baseline.specs_submitted,
        ),
        check_counter(
            "serve",
            "runs_executed",
            new.runs_executed,
            baseline.runs_executed,
        ),
        check_counter(
            "serve",
            "outcomes_total",
            new.outcomes_total,
            baseline.outcomes_total,
        ),
        check_counter(
            "serve",
            "outcomes_streamed",
            new.outcomes_streamed,
            baseline.outcomes_streamed,
        ),
        check_counter("serve", "cache_hits", new.cache_hits, baseline.cache_hits),
        check_counter(
            "serve",
            "cache_misses",
            new.cache_misses,
            baseline.cache_misses,
        ),
    ]
}

/// Compares a fresh distributed-sweep report against the committed
/// baseline. Both walls (coordinated and single-process) are
/// calibration-banded; every lease-protocol counter is exact-compared — a
/// drift means the lease protocol, the shard chunking, or the fixed spec
/// changed, which must be a deliberate baseline refresh.
pub fn compare_dist(new: &DistReport, baseline: &DistReport, tolerance: f64) -> Vec<GateOutcome> {
    vec![
        check_wall(
            "dist coordinated",
            new.wall_seconds,
            baseline.wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_wall(
            "dist single-process",
            new.single_wall_seconds,
            baseline.single_wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_counter("dist", "workers", new.workers, baseline.workers),
        check_counter("dist", "shards", new.shards, baseline.shards),
        check_counter(
            "dist",
            "scenarios_total",
            new.scenarios_total,
            baseline.scenarios_total,
        ),
        check_counter(
            "dist",
            "leases_granted",
            new.leases_granted,
            baseline.leases_granted,
        ),
        check_counter(
            "dist",
            "leases_renewed",
            new.leases_renewed,
            baseline.leases_renewed,
        ),
        check_counter(
            "dist",
            "leases_expired",
            new.leases_expired,
            baseline.leases_expired,
        ),
        check_counter(
            "dist",
            "shards_reinjected",
            new.shards_reinjected,
            baseline.shards_reinjected,
        ),
        check_counter(
            "dist",
            "stale_completions",
            new.stale_completions,
            baseline.stale_completions,
        ),
        check_counter(
            "dist",
            "shards_completed",
            new.shards_completed,
            baseline.shards_completed,
        ),
    ]
}

/// Compares a fresh scenario-search report against the committed baseline:
/// the search wall is calibration-banded and every loop counter is
/// exact-compared (a drift means the seeded search explored a different
/// trajectory — a genome, fitness or selection change that must be a
/// deliberate baseline refresh).
pub fn compare_search(
    new: &SearchBenchReport,
    baseline: &SearchBenchReport,
    tolerance: f64,
) -> Vec<GateOutcome> {
    vec![
        check_wall(
            "search",
            new.wall_seconds,
            baseline.wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        check_counter(
            "search",
            "generations",
            new.generations,
            baseline.generations,
        ),
        check_counter("search", "candidates", new.candidates, baseline.candidates),
        check_counter(
            "search",
            "evaluations",
            new.evaluations,
            baseline.evaluations,
        ),
        check_counter(
            "search",
            "scenarios_evaluated",
            new.scenarios_evaluated,
            baseline.scenarios_evaluated,
        ),
        check_counter(
            "search",
            "archive_size",
            new.archive_size,
            baseline.archive_size,
        ),
    ]
}

/// Compares a fresh kernel report against the committed baseline. The
/// convolution and manager counters are exact-compared (a drift means a
/// kernel's decision sequence or the fixed workload changed), and the
/// chunked/scalar speedup is additionally held to
/// [`MIN_CHUNKED_CONV_SPEEDUP`] — a same-machine ratio, so it is checked
/// on the fresh report alone.
pub fn compare_kernels(
    new: &KernelsReport,
    baseline: &KernelsReport,
    tolerance: f64,
) -> Vec<GateOutcome> {
    let mut outcomes = vec![
        check_wall(
            "kernels chunked conv",
            new.chunked_wall_seconds,
            baseline.chunked_wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance,
        ),
        // The batched schedule wall is a few milliseconds — an order of
        // magnitude below the other gated walls, where scheduler jitter is
        // a visible fraction — so it gets twice the band; the delta path's
        // real regression signal is the exact counter set below.
        check_wall(
            "kernels delta manager",
            new.delta_wall_seconds,
            baseline.delta_wall_seconds,
            new.calibration_ops_per_sec,
            baseline.calibration_ops_per_sec,
            tolerance * 2.0,
        ),
        check_counter(
            "kernels",
            "convolution_ops",
            new.convolution_ops,
            baseline.convolution_ops,
        ),
        check_counter("kernels", "pruned_ops", new.pruned_ops, baseline.pruned_ops),
        check_counter(
            "kernels",
            "chunked_lanes",
            new.chunked_lanes,
            baseline.chunked_lanes,
        ),
        check_counter(
            "kernels",
            "cold_curve_builds",
            new.cold_curve_builds,
            baseline.cold_curve_builds,
        ),
        check_counter(
            "kernels",
            "delta_curve_builds",
            new.delta_curve_builds,
            baseline.delta_curve_builds,
        ),
        check_counter(
            "kernels",
            "delta_invocations",
            new.delta_invocations,
            baseline.delta_invocations,
        ),
        check_counter(
            "kernels",
            "warm_rows_reused",
            new.warm_rows_reused,
            baseline.warm_rows_reused,
        ),
    ];
    if new.conv_speedup < MIN_CHUNKED_CONV_SPEEDUP {
        outcomes.push(GateOutcome::WallRegression(format!(
            "kernels: chunked convolution speedup over the pruned scalar path dropped to \
             {:.2}x (required ≥ {MIN_CHUNKED_CONV_SPEEDUP:.1}x; chunked {:.4}s vs scalar {:.4}s)",
            new.conv_speedup, new.chunked_wall_seconds, new.scalar_wall_seconds
        )));
    }
    if new.delta_curve_builds >= new.cold_curve_builds {
        outcomes.push(GateOutcome::CounterDrift(format!(
            "kernels: the delta path no longer reduces curve builds \
             ({} delta vs {} cold)",
            new.delta_curve_builds, new.cold_curve_builds
        )));
    }
    outcomes
}

/// The repository root (the bench crate lives at `crates/bench`).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn read_json<T: Deserialize>(path: &Path) -> Result<T, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn write_json<T: Serialize>(path: &Path, value: &T) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    let mut text = serde_json::to_string_pretty(value)
        .map_err(|e| format!("cannot serialize {}: {e}", path.display()))?;
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Entry point of the `bench_gate` binary. Returns the process exit code.
pub fn gate_main(args: &[String]) -> i32 {
    let mut update = false;
    let mut tolerance = std::env::var("QOSRM_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE);
    let mut repetitions = 3usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--check" => update = false,
            "--tolerance" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance requires a non-negative number");
                    return 2;
                }
            },
            "--repetitions" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r >= 1 => repetitions = r,
                _ => {
                    eprintln!("--repetitions requires a positive integer");
                    return 2;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_gate [--check|--update] [--tolerance FRAC] [--repetitions N]"
                );
                return 0;
            }
            other => {
                eprintln!("unknown argument {other}");
                return 2;
            }
        }
    }

    let root = repo_root();
    let calibration = calibrate();
    println!("calibration: {:.0} ops/s", calibration);
    let simulator = run_simulator_bench(repetitions, calibration);
    println!(
        "simulator loop: {:.4}s best of {}, {} events, {:.0} events/s",
        simulator.loop_wall_seconds,
        simulator.repetitions,
        simulator.loop_events,
        simulator.loop_events_per_sec
    );
    println!(
        "simulator managed: {:.4}s best of {}, {} events, {:.0} events/s",
        simulator.managed_wall_seconds,
        simulator.repetitions,
        simulator.managed_events,
        simulator.managed_events_per_sec
    );
    let global = run_global_opt_bench(repetitions, calibration);
    println!(
        "global_opt: {:.4}s best of {}, {} calls, {} convolution ops ({} pruned), {:.0} ops/s",
        global.wall_seconds,
        global.repetitions,
        global.calls,
        global.convolution_ops,
        global.pruned_ops,
        global.ops_per_sec
    );
    let local = run_local_opt_bench(repetitions, calibration);
    println!(
        "local_opt: builder {:.4}s vs scalar {:.4}s best of {} ({:.2}x), {} curves, \
         {} evaluations, {:.0} curves/s",
        local.builder_wall_seconds,
        local.scalar_wall_seconds,
        local.repetitions,
        local.speedup,
        local.curves_built,
        local.evaluations,
        local.curves_per_sec
    );
    let game = run_best_response_bench(repetitions, calibration);
    println!(
        "best_response: {:.4}s best of {}, {} BR + {} EQ calls, {} rounds, \
         {} evaluations, {} equilibria examined, {:.0} ops/s",
        game.wall_seconds,
        game.repetitions,
        game.br_calls,
        game.eq_calls,
        game.rounds,
        game.evaluations,
        game.equilibria_examined,
        game.ops_per_sec
    );
    let serve = run_serve_bench(repetitions, calibration);
    println!(
        "serve: {:.4}s best of {}, {} submissions -> {} runs, {} outcomes streamed, \
         cache {}/{} hit/miss ({:.0}% hit rate), {:.1} specs/s, {:.1} outcomes/s",
        serve.wall_seconds,
        serve.repetitions,
        serve.specs_submitted,
        serve.runs_executed,
        serve.outcomes_streamed,
        serve.cache_hits,
        serve.cache_misses,
        serve.cache_hit_rate * 100.0,
        serve.specs_per_sec,
        serve.outcomes_per_sec
    );
    let kernels = run_kernels_bench(repetitions, calibration);
    println!(
        "kernels: chunked {:.4}s vs scalar {:.4}s best of {} ({:.2}x), {} conv ops \
         ({} pruned, {} lanes); manager cold {:.4}s vs delta {:.4}s, curves {} -> {}, \
         {} delta invocations, {} warm rows",
        kernels.chunked_wall_seconds,
        kernels.scalar_wall_seconds,
        kernels.repetitions,
        kernels.conv_speedup,
        kernels.convolution_ops,
        kernels.pruned_ops,
        kernels.chunked_lanes,
        kernels.cold_wall_seconds,
        kernels.delta_wall_seconds,
        kernels.cold_curve_builds,
        kernels.delta_curve_builds,
        kernels.delta_invocations,
        kernels.warm_rows_reused
    );
    let dist = run_dist_bench(repetitions, calibration);
    println!(
        "dist: coordinated {:.4}s vs single-process {:.4}s best of {}, {} workers, {} shards, \
         {} scenarios, leases {} granted / {} renewed / {} expired / {} reinjected / {} stale, \
         {:.1} scenarios/s",
        dist.wall_seconds,
        dist.single_wall_seconds,
        dist.repetitions,
        dist.workers,
        dist.shards,
        dist.scenarios_total,
        dist.leases_granted,
        dist.leases_renewed,
        dist.leases_expired,
        dist.shards_reinjected,
        dist.stale_completions,
        dist.scenarios_per_sec
    );
    let search = run_search_bench(repetitions, calibration);
    println!(
        "search: {:.4}s best of {}, {} generations, {} candidates -> {} evaluations \
         ({} scenario runs), archive of {}, {:.1} scenarios/s",
        search.wall_seconds,
        search.repetitions,
        search.generations,
        search.candidates,
        search.evaluations,
        search.scenarios_evaluated,
        search.archive_size,
        search.scenarios_per_sec
    );

    let (
        sim_path,
        opt_path,
        local_path,
        game_path,
        serve_path,
        kernels_path,
        dist_path,
        search_path,
    ) = if update {
        (
            root.join("BENCH_simulator.json"),
            root.join("BENCH_global_opt.json"),
            root.join("BENCH_local_opt.json"),
            root.join("BENCH_best_response.json"),
            root.join("BENCH_serve.json"),
            root.join("BENCH_kernels.json"),
            root.join("BENCH_dist.json"),
            root.join("BENCH_search.json"),
        )
    } else {
        let out = root.join("target/bench-gate");
        (
            out.join("BENCH_simulator.json"),
            out.join("BENCH_global_opt.json"),
            out.join("BENCH_local_opt.json"),
            out.join("BENCH_best_response.json"),
            out.join("BENCH_serve.json"),
            out.join("BENCH_kernels.json"),
            out.join("BENCH_dist.json"),
            out.join("BENCH_search.json"),
        )
    };
    for (path, result) in [
        (&sim_path, write_json(&sim_path, &simulator)),
        (&opt_path, write_json(&opt_path, &global)),
        (&local_path, write_json(&local_path, &local)),
        (&game_path, write_json(&game_path, &game)),
        (&serve_path, write_json(&serve_path, &serve)),
        (&kernels_path, write_json(&kernels_path, &kernels)),
        (&dist_path, write_json(&dist_path, &dist)),
        (&search_path, write_json(&search_path, &search)),
    ] {
        if let Err(e) = result {
            eprintln!("{e}");
            return 2;
        }
        println!("wrote {}", path.display());
    }
    if update {
        println!("baselines refreshed");
        return 0;
    }

    let sim_baseline: SimulatorReport = match read_json(&root.join("BENCH_simulator.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("no committed baseline; run with --update to create one");
            return 2;
        }
    };
    let opt_baseline: GlobalOptReport = match read_json(&root.join("BENCH_global_opt.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("no committed baseline; run with --update to create one");
            return 2;
        }
    };
    let local_baseline: LocalOptReport = match read_json(&root.join("BENCH_local_opt.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("no committed baseline; run with --update to create one");
            return 2;
        }
    };
    let game_baseline: BestResponseReport = match read_json(&root.join("BENCH_best_response.json"))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("no committed baseline; run with --update to create one");
            return 2;
        }
    };
    let serve_baseline: ServeReport = match read_json(&root.join("BENCH_serve.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("no committed baseline; run with --update to create one");
            return 2;
        }
    };
    let kernels_baseline: KernelsReport = match read_json(&root.join("BENCH_kernels.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("no committed baseline; run with --update to create one");
            return 2;
        }
    };
    let dist_baseline: DistReport = match read_json(&root.join("BENCH_dist.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("no committed baseline; run with --update to create one");
            return 2;
        }
    };
    let search_baseline: SearchBenchReport = match read_json(&root.join("BENCH_search.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("no committed baseline; run with --update to create one");
            return 2;
        }
    };

    let mut failed = false;
    for outcome in compare_simulator(&simulator, &sim_baseline, tolerance)
        .into_iter()
        .chain(compare_global_opt(&global, &opt_baseline, tolerance))
        .chain(compare_local_opt(&local, &local_baseline, tolerance))
        .chain(compare_best_response(&game, &game_baseline, tolerance))
        .chain(compare_serve(&serve, &serve_baseline, tolerance))
        .chain(compare_kernels(&kernels, &kernels_baseline, tolerance))
        .chain(compare_dist(&dist, &dist_baseline, tolerance))
        .chain(compare_search(&search, &search_baseline, tolerance))
    {
        match outcome {
            GateOutcome::Pass => {}
            GateOutcome::WallRegression(msg) | GateOutcome::CounterDrift(msg) => {
                eprintln!("FAIL: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        1
    } else {
        println!("perf gate passed (tolerance {:.0}%)", tolerance * 100.0);
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulator_report(wall: f64, events: u64) -> SimulatorReport {
        SimulatorReport {
            schema: SCHEMA.to_string(),
            bench: "simulator".to_string(),
            workload: "test".to_string(),
            repetitions: 1,
            loop_wall_seconds: wall,
            loop_events: events,
            loop_events_per_sec: events as f64 / wall,
            managed_wall_seconds: wall,
            managed_events: events,
            managed_events_per_sec: events as f64 / wall,
            calibration_ops_per_sec: 1_000_000.0,
        }
    }

    #[test]
    fn wall_regression_is_detected_beyond_tolerance() {
        let base = simulator_report(1.0, 100);
        let ok = simulator_report(1.15, 100);
        let bad = simulator_report(1.25, 100);
        assert!(compare_simulator(&ok, &base, 0.20)
            .iter()
            .all(|o| *o == GateOutcome::Pass));
        assert!(compare_simulator(&bad, &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::WallRegression(_))));
    }

    #[test]
    fn wall_comparison_is_calibration_normalized() {
        let base = simulator_report(1.0, 100);
        // The same code on a machine half as fast: raw wall doubles but so
        // does the gap in calibration throughput — normalization cancels it.
        let mut slow = simulator_report(2.0, 100);
        slow.calibration_ops_per_sec = base.calibration_ops_per_sec / 2.0;
        assert!(compare_simulator(&slow, &base, 0.20)
            .iter()
            .all(|o| *o == GateOutcome::Pass));
        // A genuine 2x regression on an identical machine still fails.
        let regressed = simulator_report(2.0, 100);
        assert!(compare_simulator(&regressed, &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::WallRegression(_))));
    }

    #[test]
    fn counter_drift_is_a_hard_failure() {
        let base = simulator_report(1.0, 100);
        let drifted = simulator_report(0.5, 101);
        assert!(compare_simulator(&drifted, &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::CounterDrift(_))));
    }

    fn local_report(builder_wall: f64, speedup: f64, evaluations: u64) -> LocalOptReport {
        LocalOptReport {
            schema: SCHEMA.to_string(),
            bench: "local_opt".to_string(),
            workload: "test".to_string(),
            repetitions: 1,
            builder_wall_seconds: builder_wall,
            scalar_wall_seconds: builder_wall * speedup,
            speedup,
            curves_built: 100,
            evaluations,
            curves_per_sec: 100.0 / builder_wall,
            calibration_ops_per_sec: 1_000_000.0,
        }
    }

    #[test]
    fn local_opt_gate_checks_wall_counters_and_speedup() {
        let base = local_report(1.0, 4.0, 5000);
        assert!(
            compare_local_opt(&local_report(1.1, 4.0, 5000), &base, 0.20)
                .iter()
                .all(|o| *o == GateOutcome::Pass)
        );
        // Wall regression beyond the band.
        assert!(
            compare_local_opt(&local_report(1.3, 4.0, 5000), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::WallRegression(_)))
        );
        // Evaluation-count drift is a hard failure even when faster.
        assert!(
            compare_local_opt(&local_report(0.5, 4.0, 5001), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::CounterDrift(_)))
        );
        // Losing the required builder speedup fails regardless of baseline.
        assert!(
            compare_local_opt(&local_report(1.0, 2.0, 5000), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::WallRegression(_))),
            "speedup below {MIN_LOCAL_OPT_SPEEDUP} must fail the gate"
        );
    }

    #[test]
    fn local_opt_bench_counters_are_deterministic() {
        // One repetition with a tiny round count through the real fixture:
        // counters must be identical across runs (the gate exact-compares
        // them) and the builder path must report nonzero measured work.
        let a = run_local_opt_bench_with_rounds(1, 1_000_000.0, 2);
        let b = run_local_opt_bench_with_rounds(1, 1_000_000.0, 2);
        assert_eq!(a.curves_built, b.curves_built);
        assert_eq!(a.evaluations, b.evaluations);
        assert!(a.curves_built > 0 && a.evaluations > 0);
    }

    fn kernels_report(
        chunked_wall: f64,
        conv_speedup: f64,
        convolution_ops: u64,
        delta_curve_builds: u64,
    ) -> KernelsReport {
        KernelsReport {
            schema: SCHEMA.to_string(),
            bench: "kernels".to_string(),
            workload: "test".to_string(),
            repetitions: 1,
            chunked_wall_seconds: chunked_wall,
            scalar_wall_seconds: chunked_wall * conv_speedup,
            conv_speedup,
            convolution_ops,
            pruned_ops: 400,
            chunked_lanes: 900,
            cold_wall_seconds: 1.0,
            delta_wall_seconds: 0.6,
            cold_curve_builds: 96,
            delta_curve_builds,
            delta_invocations: 60,
            warm_rows_reused: 40,
            calibration_ops_per_sec: 1_000_000.0,
        }
    }

    #[test]
    fn kernels_gate_checks_wall_counters_speedup_and_delta_reduction() {
        let base = kernels_report(1.0, 2.0, 7000, 36);
        assert!(
            compare_kernels(&kernels_report(1.1, 2.0, 7000, 36), &base, 0.20)
                .iter()
                .all(|o| *o == GateOutcome::Pass)
        );
        // Wall regression beyond the band.
        assert!(
            compare_kernels(&kernels_report(1.3, 2.0, 7000, 36), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::WallRegression(_)))
        );
        // Convolution-op drift is a hard failure even when faster.
        assert!(
            compare_kernels(&kernels_report(0.5, 2.0, 7001, 36), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::CounterDrift(_)))
        );
        // Losing the required chunked speedup fails regardless of baseline.
        assert!(
            compare_kernels(&kernels_report(1.0, 1.1, 7000, 36), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::WallRegression(_))),
            "speedup below {MIN_CHUNKED_CONV_SPEEDUP} must fail the gate"
        );
        // The delta path must keep building fewer curves than the cold path
        // (and the change from the baseline's count is itself a drift).
        assert!(
            compare_kernels(&kernels_report(1.0, 2.0, 7000, 96), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::CounterDrift(_)))
        );
    }

    #[test]
    fn kernels_bench_counters_are_deterministic() {
        // One repetition with tiny workload sizes through the real fixture:
        // the exact-compared counters must be identical across runs, both
        // kernels must report measured work, and the delta manager must
        // build strictly fewer curves (the run itself asserts lockstep
        // bit-identity of the two managers' settings).
        let a = run_kernels_bench_with(1, 1_000_000.0, 2, 6);
        let b = run_kernels_bench_with(1, 1_000_000.0, 2, 6);
        assert_eq!(a.convolution_ops, b.convolution_ops);
        assert_eq!(a.pruned_ops, b.pruned_ops);
        assert_eq!(a.chunked_lanes, b.chunked_lanes);
        assert_eq!(a.cold_curve_builds, b.cold_curve_builds);
        assert_eq!(a.delta_curve_builds, b.delta_curve_builds);
        assert_eq!(a.delta_invocations, b.delta_invocations);
        assert_eq!(a.warm_rows_reused, b.warm_rows_reused);
        assert!(a.convolution_ops > 0 && a.chunked_lanes > 0);
        assert!(a.delta_curve_builds < a.cold_curve_builds);
        assert!(a.delta_invocations > 0 && a.warm_rows_reused > 0);
    }

    #[test]
    fn synthetic_curves_are_deterministic_and_feasible() {
        let a = synthetic_curves(8, 16);
        let b = synthetic_curves(8, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|c| c.any_feasible()));
    }

    fn best_response_report(wall: f64, rounds: u64, evaluations: u64) -> BestResponseReport {
        BestResponseReport {
            schema: SCHEMA.to_string(),
            bench: "best_response".to_string(),
            workload: "test".to_string(),
            repetitions: 1,
            wall_seconds: wall,
            br_calls: 10,
            eq_calls: 3,
            rounds,
            evaluations,
            equilibria_examined: 200,
            ops_per_sec: (evaluations + 200) as f64 / wall,
            calibration_ops_per_sec: 1_000_000.0,
        }
    }

    #[test]
    fn best_response_gate_checks_wall_and_exact_counters() {
        let base = best_response_report(1.0, 40, 9000);
        assert!(
            compare_best_response(&best_response_report(1.1, 40, 9000), &base, 0.20)
                .iter()
                .all(|o| *o == GateOutcome::Pass)
        );
        // Wall regression beyond the band.
        assert!(
            compare_best_response(&best_response_report(1.3, 40, 9000), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::WallRegression(_)))
        );
        // Any counter drift is a hard failure even when faster: the solvers'
        // orbits over the fixed synthetic workload are deterministic.
        assert!(
            compare_best_response(&best_response_report(0.5, 41, 9000), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::CounterDrift(_)))
        );
        assert!(
            compare_best_response(&best_response_report(0.5, 40, 9001), &base, 0.20)
                .iter()
                .any(|o| matches!(o, GateOutcome::CounterDrift(_)))
        );
    }

    fn serve_report(wall: f64, streamed: u64, hits: u64) -> ServeReport {
        ServeReport {
            schema: SCHEMA.to_string(),
            bench: "serve".to_string(),
            workload: "test".to_string(),
            repetitions: 1,
            wall_seconds: wall,
            specs_submitted: 24,
            runs_executed: 8,
            outcomes_total: 24,
            outcomes_streamed: streamed,
            cache_hits: hits,
            cache_misses: 30,
            cache_hit_rate: hits as f64 / (hits + 30) as f64,
            specs_per_sec: 24.0 / wall,
            outcomes_per_sec: streamed as f64 / wall,
            calibration_ops_per_sec: 1_000_000.0,
        }
    }

    #[test]
    fn serve_gate_checks_wall_and_exact_counters() {
        let base = serve_report(1.0, 18, 60);
        assert!(compare_serve(&serve_report(1.1, 18, 60), &base, 0.20)
            .iter()
            .all(|o| *o == GateOutcome::Pass));
        // Wall regression beyond the band.
        assert!(compare_serve(&serve_report(1.3, 18, 60), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::WallRegression(_))));
        // Streaming or cache counter drift is a hard failure even when
        // faster: the single-worker serial daemon makes them deterministic.
        assert!(compare_serve(&serve_report(0.5, 17, 60), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::CounterDrift(_))));
        assert!(compare_serve(&serve_report(0.5, 18, 61), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::CounterDrift(_))));
    }

    #[test]
    fn serve_bench_counters_are_deterministic() {
        // One repetition of a tiny submission mix through a real in-process
        // daemon, twice: the gate exact-compares the admission / streaming /
        // cache counters, so two cold daemons must report identical values,
        // and the mix must exercise both dedup and the curve cache.
        let a = run_serve_bench_with_load(1, 1_000_000.0, 2, 2, 2);
        let b = run_serve_bench_with_load(1, 1_000_000.0, 2, 2, 2);
        assert_eq!(a.specs_submitted, b.specs_submitted);
        assert_eq!(a.runs_executed, b.runs_executed);
        assert_eq!(a.outcomes_total, b.outcomes_total);
        assert_eq!(a.outcomes_streamed, b.outcomes_streamed);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cache_misses, b.cache_misses);
        assert_eq!(a.specs_submitted, 4);
        assert_eq!(a.runs_executed, 2);
        assert!(a.outcomes_total > 0 && a.cache_misses > 0);
    }

    fn dist_report(wall: f64, granted: u64, reinjected: u64) -> DistReport {
        DistReport {
            schema: SCHEMA.to_string(),
            bench: "dist".to_string(),
            workload: "test".to_string(),
            repetitions: 1,
            wall_seconds: wall,
            single_wall_seconds: wall * 2.0,
            workers: 4,
            shards: 8,
            scenarios_total: 8,
            leases_granted: granted,
            leases_renewed: 0,
            leases_expired: 0,
            shards_reinjected: reinjected,
            stale_completions: 0,
            shards_completed: 8,
            scenarios_per_sec: 8.0 / wall,
            calibration_ops_per_sec: 1_000_000.0,
        }
    }

    #[test]
    fn dist_gate_checks_both_walls_and_exact_lease_counters() {
        let base = dist_report(1.0, 8, 0);
        assert!(compare_dist(&dist_report(1.1, 8, 0), &base, 0.20)
            .iter()
            .all(|o| *o == GateOutcome::Pass));
        // Coordinated wall regression beyond the band.
        assert!(compare_dist(&dist_report(1.3, 8, 0), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::WallRegression(_))));
        // The single-process wall is banded too.
        let mut slow_single = dist_report(1.0, 8, 0);
        slow_single.single_wall_seconds = 3.0;
        assert!(compare_dist(&slow_single, &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::WallRegression(_))));
        // Lease-counter drift is a hard failure even when faster: a grant
        // or reinjection the baseline never saw means the protocol or the
        // chunking changed.
        assert!(compare_dist(&dist_report(0.5, 9, 0), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::CounterDrift(_))));
        assert!(compare_dist(&dist_report(0.5, 8, 1), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::CounterDrift(_))));
    }

    #[test]
    fn dist_bench_counters_are_deterministic() {
        // One repetition of a tiny fleet (2 workers, 2 scenarios) through a
        // real in-process coordinator, twice: the gate exact-compares the
        // lease counters, so both runs must agree — every shard granted
        // exactly once, nothing expired, reinjected or rejected — and the
        // runner itself asserts the distributed merge is byte-identical to
        // the single-process run.
        let a = run_dist_bench_with(1, 1_000_000.0, 2, 1);
        let b = run_dist_bench_with(1, 1_000_000.0, 2, 1);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.scenarios_total, b.scenarios_total);
        assert_eq!(a.leases_granted, b.leases_granted);
        assert_eq!(a.shards_completed, b.shards_completed);
        assert_eq!(a.scenarios_total, 2);
        assert_eq!(a.leases_granted, 2);
        assert_eq!(a.shards_completed, 2);
        assert_eq!(a.leases_expired, 0);
        assert_eq!(a.shards_reinjected, 0);
        assert_eq!(a.stale_completions, 0);
    }

    #[test]
    fn best_response_bench_counters_are_deterministic() {
        // One repetition with tiny call counts through the real fixture: the
        // gate exact-compares the counters, so two runs must agree, and both
        // solver families must report nonzero measured work.
        let a = run_best_response_bench_with_calls(1, 1_000_000.0, 3, 2);
        let b = run_best_response_bench_with_calls(1, 1_000_000.0, 3, 2);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.equilibria_examined, b.equilibria_examined);
        assert!(a.rounds > 0 && a.evaluations > 0 && a.equilibria_examined > 0);
    }

    fn search_report(wall: f64, evaluations: u64, archive: u64) -> SearchBenchReport {
        SearchBenchReport {
            schema: SCHEMA.to_string(),
            bench: "search".to_string(),
            workload: "test".to_string(),
            repetitions: 1,
            wall_seconds: wall,
            generations: 3,
            candidates: 15,
            evaluations,
            scenarios_evaluated: evaluations * 4,
            archive_size: archive,
            scenarios_per_sec: evaluations as f64 * 4.0 / wall,
            calibration_ops_per_sec: 1_000_000.0,
        }
    }

    #[test]
    fn search_gate_checks_the_wall_and_exact_search_counters() {
        let base = search_report(1.0, 13, 5);
        assert!(compare_search(&search_report(1.1, 13, 5), &base, 0.20)
            .iter()
            .all(|o| *o == GateOutcome::Pass));
        assert!(compare_search(&search_report(1.3, 13, 5), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::WallRegression(_))));
        // Counter drift is a hard failure even when faster: a changed
        // evaluation count or archive size means the seeded search walked a
        // different trajectory — the determinism contract broke.
        assert!(compare_search(&search_report(0.5, 14, 5), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::CounterDrift(_))));
        assert!(compare_search(&search_report(0.5, 13, 4), &base, 0.20)
            .iter()
            .any(|o| matches!(o, GateOutcome::CounterDrift(_))));
    }

    #[test]
    fn search_bench_counters_are_deterministic() {
        // A tiny seeded search through the real runner, twice: the runner
        // itself asserts manifest byte-identity across repetitions, and the
        // gate exact-compares the counters, so two invocations must agree.
        let config = experiments::SearchConfig {
            seed: 99,
            generations: 2,
            population: 3,
            capacity: 2,
            max_mixes: 1,
            name: "gate-test".to_string(),
        };
        let a = run_search_bench_with(2, 1_000_000.0, &config);
        let b = run_search_bench_with(1, 1_000_000.0, &config);
        assert_eq!(a.generations, b.generations);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.scenarios_evaluated, b.scenarios_evaluated);
        assert_eq!(a.archive_size, b.archive_size);
        assert_eq!(a.generations, 2);
        assert!(a.evaluations > 0 && a.scenarios_evaluated > 0);
        assert!(a.archive_size >= 1 && a.archive_size <= 2);
    }
}
