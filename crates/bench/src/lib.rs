//! # qosrm-bench
//!
//! Shared fixtures for the criterion benchmark harness.
//!
//! The benches are organised by what they regenerate:
//!
//! * `rma_overhead` — the cost of one resource-manager invocation
//!   (paper experiments E5 and E9: the "overhead" tables);
//! * `optimizer_scaling` — the local and global optimization steps in
//!   isolation, swept over core counts (the `O(cores · ways²)` claim);
//! * `substrates` — throughput of the cache/ATD/stream substrates the
//!   evaluation pipeline is built on;
//! * `experiments_tables` — one end-to-end co-phase simulation per paper
//!   table/figure family (E1/E2/E3/E7/E8), so regressions in the full
//!   pipeline show up as bench regressions;
//! * `sweep_throughput` — the scenario-sweep engine in its three execution
//!   modes (serial / parallel / parallel + memoized energy curves), tracking
//!   the speedup that makes large scenario spaces affordable.

#![warn(missing_docs)]

pub mod gate;

use qosrm_types::{
    CoreId, CoreObservation, CoreScalingProfile, MissProfile, MlpProfile, PlatformConfig,
    SystemSetting,
};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use simdb::{GroundTruth, SimDb};
use workload::WorkloadMix;

/// A representative 4-application workload used by several benches.
pub fn default_mix() -> WorkloadMix {
    WorkloadMix::new(
        "bench-mix",
        vec!["mcf_like", "soplex_like", "libquantum_like", "gamess_like"],
    )
}

/// Builds a coarse simulation database for `mix` on `platform`
/// (quick characterization: the benches measure the algorithms, not the
/// characterization itself).
pub fn build_db(platform: &PlatformConfig, mix: &WorkloadMix) -> SimDb {
    build_database_for_mixes(
        platform,
        std::slice::from_ref(mix),
        &BuildOptions::quick_for_tests(platform),
    )
}

/// Builds the observation a core would hand to the resource manager after one
/// interval of the first phase of `benchmark`, at the baseline setting.
pub fn observation_for(
    db: &SimDb,
    platform: &PlatformConfig,
    benchmark: &str,
    core: usize,
) -> CoreObservation {
    let ground_truth = GroundTruth::new(platform);
    let record = db.benchmark(benchmark).expect("benchmark in database");
    let phase = record.phase(record.trace.phase_at(0));
    let setting = SystemSetting::baseline(platform).core(CoreId(core));
    CoreObservation {
        app: qosrm_types::AppId(core),
        stats: ground_truth.interval_stats(phase, setting),
        miss_profile: MissProfile::new(phase.atd_misses_per_way.clone()),
        mlp_profile: Some(MlpProfile::new(phase.atd_leading_misses.clone())),
        scaling_profile: Some(CoreScalingProfile::new(phase.exec_cpi.clone())),
        perfect: None,
    }
}
