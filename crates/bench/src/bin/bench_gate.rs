//! The CI performance-regression gate: runs the fixed simulator-loop and
//! global-optimizer workloads, writes `BENCH_*.json` reports and fails when
//! wall time regresses beyond the tolerance. See [`qosrm_bench::gate`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(qosrm_bench::gate::gate_main(&args) as u8)
}
