//! End-to-end co-phase simulations, one per family of paper tables/figures.
//!
//! Each bench runs one representative workload of the corresponding
//! experiment under its manager configuration, so the cost (and any
//! performance regression) of regenerating each table is tracked:
//!
//! * `e1_combined_rma`      — Paper I energy-savings table (Combined RMA);
//! * `e1_partitioning_only` — Paper I partitioning-only column;
//! * `e2_perfect_models`    — Paper I perfect-model study;
//! * `e3_relaxed_qos`       — Paper I QoS-relaxation figure (40 % point);
//! * `e7_rm3_scenario1`     — Paper II per-scenario savings (RM3);
//! * `e8_model1_rm3`        — Paper II model-accuracy comparison (Model 1).

use criterion::{criterion_group, criterion_main, Criterion};
use qosrm_bench::build_db;
use qosrm_core::{CoordinatedRma, ModelKind};
use qosrm_types::{PlatformConfig, QosSpec, ResourceManager};
use rma_sim::{CophaseSimulator, SimulationOptions};
use std::hint::black_box;
use workload::WorkloadMix;

fn paper1_mix() -> WorkloadMix {
    WorkloadMix::new(
        "bench-e1",
        vec!["mcf_like", "soplex_like", "libquantum_like", "gamess_like"],
    )
}

fn scenario1_mix() -> WorkloadMix {
    WorkloadMix::new(
        "bench-s1",
        vec![
            "soplex_like",
            "gems_fdtd_like",
            "mcf_like",
            "libquantum_like",
        ],
    )
}

fn run_workload(
    simulator: &CophaseSimulator,
    make_manager: impl Fn() -> Box<dyn ResourceManager>,
) -> f64 {
    let mut manager = make_manager();
    let result = simulator
        .run(manager.as_mut())
        .expect("bench workload must finish within the event budget");
    result.system_energy_joules
}

fn bench_paper1_tables(c: &mut Criterion) {
    let platform = PlatformConfig::paper1(4);
    let mix = paper1_mix();
    let db = build_db(&platform, &mix);
    let qos = vec![QosSpec::STRICT; 4];

    let analytic = CophaseSimulator::new(
        &db,
        &mix,
        SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        },
    )
    .unwrap();
    let perfect = CophaseSimulator::new(
        &db,
        &mix,
        SimulationOptions {
            provide_mlp_profiles: false,
            provide_perfect_tables: true,
            ..Default::default()
        },
    )
    .unwrap();

    let mut group = c.benchmark_group("paper1_tables");
    group.sample_size(10);
    group.bench_function("e1_combined_rma", |b| {
        b.iter(|| {
            black_box(run_workload(&analytic, || {
                Box::new(CoordinatedRma::paper1(&platform, qos.clone()))
            }))
        })
    });
    group.bench_function("e1_partitioning_only", |b| {
        b.iter(|| {
            black_box(run_workload(&analytic, || {
                Box::new(CoordinatedRma::partitioning_only(&platform, qos.clone()))
            }))
        })
    });
    group.bench_function("e2_perfect_models", |b| {
        b.iter(|| {
            black_box(run_workload(&perfect, || {
                Box::new(CoordinatedRma::with_model(
                    &platform,
                    qos.clone(),
                    ModelKind::Perfect,
                    false,
                ))
            }))
        })
    });
    let relaxed_qos = vec![QosSpec::relaxed_by(0.4); 4];
    group.bench_function("e3_relaxed_qos", |b| {
        b.iter(|| {
            black_box(run_workload(&perfect, || {
                Box::new(CoordinatedRma::with_model(
                    &platform,
                    relaxed_qos.clone(),
                    ModelKind::Perfect,
                    false,
                ))
            }))
        })
    });
    group.finish();
}

fn bench_paper2_tables(c: &mut Criterion) {
    let platform = PlatformConfig::paper2(4);
    let mix = scenario1_mix();
    let db = build_db(&platform, &mix);
    let qos = vec![QosSpec::STRICT; 4];
    let simulator = CophaseSimulator::new(&db, &mix, SimulationOptions::default()).unwrap();

    let mut group = c.benchmark_group("paper2_tables");
    group.sample_size(10);
    group.bench_function("e7_rm3_scenario1", |b| {
        b.iter(|| {
            black_box(run_workload(&simulator, || {
                Box::new(CoordinatedRma::paper2(&platform, qos.clone()))
            }))
        })
    });
    group.bench_function("e8_model1_rm3", |b| {
        b.iter(|| {
            black_box(run_workload(&simulator, || {
                Box::new(CoordinatedRma::with_model(
                    &platform,
                    qos.clone(),
                    ModelKind::SimpleLatency,
                    true,
                ))
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_paper1_tables, bench_paper2_tables);
criterion_main!(benches);
