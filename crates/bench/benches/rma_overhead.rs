//! Cost of one resource-manager invocation (paper tables E5 and E9).
//!
//! The paper reports the overhead of its C implementation as executed
//! instructions (< 40 K for the 4-core Combined RMA; 18 K / 40 K / 67 K for
//! RM3 on 2 / 4 / 8 cores). This bench measures the wall-clock equivalent of
//! one `on_interval` call — observation in hand, new system setting out —
//! for both managers across core counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosrm_bench::{build_db, observation_for};
use qosrm_core::CoordinatedRma;
use qosrm_types::{CoreId, PlatformConfig, QosSpec, ResourceManager, SystemSetting};
use std::hint::black_box;
use workload::WorkloadMix;

fn mix_for(num_cores: usize) -> WorkloadMix {
    let pool = [
        "mcf_like",
        "soplex_like",
        "libquantum_like",
        "gamess_like",
        "lbm_like",
        "omnetpp_like",
        "povray_like",
        "gcc_like",
    ];
    WorkloadMix::new(
        format!("bench-{num_cores}"),
        pool.iter().cycle().take(num_cores).copied().collect(),
    )
}

fn bench_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rma_invocation");
    group.sample_size(30);
    for &num_cores in &[2usize, 4, 8] {
        let platform = PlatformConfig::paper2(num_cores);
        let mix = mix_for(num_cores);
        let db = build_db(&platform, &mix);
        let qos = vec![QosSpec::STRICT; num_cores];
        let baseline = SystemSetting::baseline(&platform);
        let observations: Vec<_> = mix
            .benchmarks
            .iter()
            .enumerate()
            .map(|(i, b)| observation_for(&db, &platform, b, i))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("paper1_combined_rma", num_cores),
            &num_cores,
            |bencher, _| {
                let mut manager = CoordinatedRma::paper1(&platform, qos.clone());
                manager.reset(num_cores);
                // Warm the per-core curves so the measured call performs the
                // full local + global optimization.
                let mut setting = baseline.clone();
                for (i, obs) in observations.iter().enumerate() {
                    setting = manager.on_interval(CoreId(i), obs, &setting);
                }
                bencher.iter(|| {
                    black_box(manager.on_interval(
                        CoreId(0),
                        black_box(&observations[0]),
                        black_box(&setting),
                    ))
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("paper2_rm3", num_cores),
            &num_cores,
            |bencher, _| {
                let mut manager = CoordinatedRma::paper2(&platform, qos.clone());
                manager.reset(num_cores);
                let mut setting = baseline.clone();
                for (i, obs) in observations.iter().enumerate() {
                    setting = manager.on_interval(CoreId(i), obs, &setting);
                }
                bencher.iter(|| {
                    black_box(manager.on_interval(
                        CoreId(0),
                        black_box(&observations[0]),
                        black_box(&setting),
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_invocation);
criterion_main!(benches);
