//! Scaling of the optimization steps in isolation.
//!
//! The paper's overhead argument rests on two costs: the local optimization
//! (one analytical-model evaluation per candidate configuration) and the
//! global pairwise curve reduction, which is `O(cores · ways²)` and therefore
//! grows linearly with the core count. This bench isolates both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosrm_bench::{build_db, default_mix, observation_for};
use qosrm_core::{
    optimize_partition, CurvePoint, EnergyCurve, LocalOptimizer, LocalOptimizerConfig, ModelKind,
};
use qosrm_types::{CoreSizeIdx, FreqLevel, PlatformConfig, QosSpec};
use std::hint::black_box;

fn synthetic_curve(seed: u64, max_ways: usize) -> EnergyCurve {
    // A plausible downward-sloping curve with per-core variation.
    let base = 8.0 + (seed % 5) as f64;
    let slope = 0.2 + 0.07 * (seed % 7) as f64;
    EnergyCurve::new(
        (1..=max_ways)
            .map(|w| {
                Some(CurvePoint {
                    energy_joules: (base - slope * w as f64).max(0.2),
                    freq: FreqLevel((seed % 13) as usize),
                    core_size: CoreSizeIdx((seed % 3) as usize),
                    time_seconds: 0.08,
                    ways: w,
                })
            })
            .collect(),
    )
}

fn bench_local_optimizer(c: &mut Criterion) {
    let platform = PlatformConfig::paper2(4);
    let mix = default_mix();
    let db = build_db(&platform, &mix);
    let observation = observation_for(&db, &platform, "soplex_like", 0);

    let mut group = c.benchmark_group("local_optimization");
    group.sample_size(50);
    for (label, model, core_size) in [
        ("model2_dvfs_ways", ModelKind::ConstantMlp, false),
        ("model3_full_space", ModelKind::MlpAware, true),
    ] {
        let optimizer = LocalOptimizer::new(
            &platform,
            LocalOptimizerConfig {
                control_dvfs: true,
                control_core_size: core_size,
                model,
                energy_params: power_model::EnergyParams::default(),
            },
        );
        group.bench_function(label, |bencher| {
            bencher.iter(|| {
                black_box(optimizer.energy_curve(black_box(&observation), QosSpec::STRICT))
            })
        });
        // The scalar reference on the same inputs: the gap is what the
        // staged CurveBuilder buys on a cold (uncached) invocation.
        let scalar_label = format!("{label}_scalar_reference");
        group.bench_function(scalar_label.as_str(), |bencher| {
            bencher.iter(|| {
                black_box(
                    optimizer
                        .energy_curve_scalar_reference(black_box(&observation), QosSpec::STRICT),
                )
            })
        });
    }
    group.finish();
}

fn bench_global_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_reduction");
    group.sample_size(60);
    for &num_cores in &[2usize, 4, 8, 16] {
        let ways = 16usize;
        let curves: Vec<EnergyCurve> = (0..num_cores as u64)
            .map(|i| synthetic_curve(i, ways))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("pairwise_reduction", num_cores),
            &num_cores,
            |bencher, _| bencher.iter(|| black_box(optimize_partition(black_box(&curves), ways))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_local_optimizer, bench_global_reduction);
criterion_main!(benches);
