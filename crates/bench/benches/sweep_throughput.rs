//! Throughput of the scenario-sweep engine (serial vs. parallel vs.
//! parallel + memoized).
//!
//! The sweep engine is the scale axis of this repository: every new QoS
//! target, workload mix, platform shape or RMA variant multiplies the
//! scenario count, so the per-scenario cost — dominated by the energy-curve
//! constructions inside each RMA invocation — is what bounds how much of the
//! scenario space we can explore. This bench tracks the three execution
//! modes of `experiments::sweep` on one fixed grid:
//!
//! * `serial` — the reference path (what the bespoke per-experiment loops
//!   used to do);
//! * `parallel` — same work fanned out over worker threads (gains scale
//!   with core count; on a single-CPU runner it matches `serial`);
//! * `parallel_memoized` — plus the shared energy-curve cache, which
//!   answers recurring `(configuration, QoS, observation)` curve requests
//!   across scenarios and across the phase-trace wrap-around inside each
//!   run (the dominant win; it does not depend on core count).
//!
//! The simulation database is pre-built outside the measured region (every
//! mode would pay the identical, context-cached cost).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::sweep::{self, PlatformAxis, QosAxis, RmaVariant, ScenarioGrid, SweepOptions};
use experiments::ExperimentContext;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::SimulationOptions;
use std::hint::black_box;
use workload::paper1_workloads;

fn bench_grid(ctx: &ExperimentContext) -> ScenarioGrid {
    ScenarioGrid {
        platforms: vec![PlatformAxis::new(
            "paper1-4c",
            PlatformConfig::paper1(4),
            ctx.limit_workloads(paper1_workloads(4)),
        )],
        qos: vec![
            QosAxis::uniform("strict", QosSpec::STRICT),
            QosAxis::uniform("relaxed 20%", QosSpec::relaxed_by(0.2)),
            QosAxis::uniform("relaxed 40%", QosSpec::relaxed_by(0.4)),
        ],
        variants: vec![RmaVariant::Paper1, RmaVariant::PartitioningOnly],
        options: SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        },
    }
}

fn bench_sweep_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);

    for (label, options) in [
        ("serial", SweepOptions::serial()),
        (
            "parallel",
            SweepOptions {
                parallel: true,
                memoize: false,
                incremental: false,
            },
        ),
        (
            "parallel_memoized",
            SweepOptions {
                parallel: true,
                memoize: true,
                incremental: false,
            },
        ),
    ] {
        let ctx = ExperimentContext::new(true).with_sweep_options(options);
        let grid = bench_grid(&ctx);
        // Pre-build the simulation database outside the measured region.
        for axis in &grid.platforms {
            ctx.database(&axis.platform, &axis.mixes);
        }
        group.bench_function(label, |bencher| {
            bencher.iter(|| {
                // Cold curve cache per iteration: measure the within-sweep
                // memoization a user's first sweep sees, not a session-warm
                // cache from previous iterations.
                ctx.curve_cache().clear();
                black_box(sweep::run(black_box(&grid), &ctx))
            })
        });
    }

    // The streaming sharded executor on the same grid (via a spec with the
    // grid's mixes inlined): measures the checkpointing overhead — shard
    // JSONL logs, manifest rewrites, per-shard simulator/baseline
    // reconstruction — on top of `parallel_memoized`, which is the mode it
    // shares. This is the executor CI's sweep-smoke step and the
    // kill/resume workflow run.
    {
        let ctx = ExperimentContext::new(true);
        let grid = bench_grid(&ctx);
        for axis in &grid.platforms {
            ctx.database(&axis.platform, &axis.mixes);
        }
        let spec = experiments::ScenarioSpec {
            name: "bench-streaming".to_string(),
            platforms: grid
                .platforms
                .iter()
                .map(|axis| experiments::PlatformAxisSpec {
                    label: axis.label.clone(),
                    platform: experiments::PlatformSpec::Custom(axis.platform.clone()),
                    workloads: experiments::WorkloadSource::Explicit(axis.mixes.clone()),
                })
                .collect(),
            qos: grid.qos.clone(),
            variants: grid.variants.clone(),
            options: Some(grid.options.clone()),
        };
        let dir = std::env::temp_dir().join(format!("qosrm_bench_stream_{}", std::process::id()));
        group.bench_function("streaming_sharded", |bencher| {
            bencher.iter(|| {
                ctx.curve_cache().clear();
                std::fs::remove_dir_all(&dir).ok();
                let report = experiments::stream::run(
                    black_box(&spec),
                    &ctx,
                    &dir,
                    &experiments::StreamOptions {
                        shard_size: 8,
                        ..Default::default()
                    },
                )
                .expect("streaming run completes");
                assert!(report.finished);
                black_box(experiments::stream::merge(&dir).expect("merges"))
            })
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_modes);
criterion_main!(benches);
