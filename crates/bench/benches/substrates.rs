//! Throughput of the evaluation substrates (the "Sniper + McPAT" equivalent
//! of the reproduction): reference-stream generation, LRU stack-distance
//! profiling, ATD interval observation, detailed partitioned-cache replay and
//! whole-phase characterization.

use cache_model::{Atd, AtdConfig, PartitionedCache, ReplacementPolicy, StackDistanceProfiler};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qosrm_types::{CoreId, LlcGeometry, PlatformConfig, WayPartition};
use std::hint::black_box;
use workload::{benchmark, CharacterizationConfig, PhaseCharacterizer, PhaseSpec, StreamGenerator};

fn sim_llc() -> LlcGeometry {
    LlcGeometry {
        num_sets: 256,
        associativity: 16,
        line_bytes: 64,
    }
}

fn bench_stream_generation(c: &mut Criterion) {
    let spec = PhaseSpec::cache_sensitive_bursty("bench", 15.0, 2048);
    let instructions = 2_000_000u64;
    let mut group = c.benchmark_group("stream_generation");
    group.throughput(Throughput::Elements(
        (instructions as f64 * spec.apki / 1000.0) as u64,
    ));
    group.bench_function("cache_sensitive_bursty_2M_inst", |bencher| {
        bencher.iter(|| {
            let mut generator = StreamGenerator::new(7, 0);
            black_box(generator.generate(black_box(&spec), instructions))
        })
    });
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let spec = PhaseSpec::cache_sensitive_bursty("bench", 15.0, 2048);
    let trace = StreamGenerator::new(7, 0).generate(&spec, 2_000_000);
    let llc = sim_llc();

    let mut group = c.benchmark_group("cache_profiling");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("stack_distance_full", |bencher| {
        bencher.iter(|| {
            let mut profiler = StackDistanceProfiler::new(&llc);
            black_box(profiler.replay(black_box(&trace)))
        })
    });
    group.bench_function("atd_sampled_observe", |bencher| {
        bencher.iter(|| {
            let mut atd = Atd::new(
                llc,
                AtdConfig {
                    set_sampling: 8,
                    bits_per_entry: 28,
                },
            );
            black_box(atd.observe_interval(black_box(&trace)))
        })
    });
    group.bench_function("partitioned_cache_replay", |bencher| {
        bencher.iter(|| {
            let partition = WayPartition::new(vec![8, 8]);
            let mut cache = PartitionedCache::new(llc, &partition, ReplacementPolicy::Lru).unwrap();
            black_box(cache.replay(CoreId(0), black_box(trace.accesses())))
        })
    });
    group.finish();
}

fn bench_characterization(c: &mut Criterion) {
    let platform = PlatformConfig::paper2(4);
    let characterizer = PhaseCharacterizer::new(
        &platform,
        CharacterizationConfig::quick_for_tests(&platform),
    );
    let bench_profile = benchmark("soplex_like").unwrap();
    let mut group = c.benchmark_group("phase_characterization");
    group.sample_size(20);
    group.bench_function("soplex_like_phase0_quick", |bencher| {
        bencher.iter(|| {
            black_box(characterizer.characterize(
                black_box(&bench_profile.phases[0]),
                bench_profile.phase_seed(0),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stream_generation,
    bench_profiling,
    bench_characterization
);
criterion_main!(benches);
