//! # qosrm-serve
//!
//! Sweep-as-a-service: a resident daemon (`qosrm_serve`) that keeps the
//! expensive experiment state — simulation databases and the energy-curve
//! memoization cache — warm across scenario sweeps, plus the load
//! generator (`qosrm_load`) that hammers it in CI.
//!
//! The daemon wraps the existing [`experiments::stream`] executor behind a
//! hand-rolled minimal HTTP/JSONL protocol on [`std::net::TcpListener`]
//! (thread-per-connection plus a bounded worker pool; no async runtime —
//! the workspace vendors all dependencies). Crucially it adds **no new
//! on-disk format**: a run directory is a standard streaming-run directory
//! (`manifest.json` + `shard-*.jsonl`) plus a daemon-owned `run.json`, so
//!
//! * a daemon restart resumes in-flight runs from their manifests, and
//! * the merged result of a daemon run is **byte-identical** to
//!   `qosrm_experiments sweep run` of the same spec — the serving path can
//!   never drift from the offline one.
//!
//! ## Protocol
//!
//! | Request | Meaning |
//! |---|---|
//! | `POST /runs?quick=&shard_size=` (body: spec JSON) | submit; 202 = admitted, 200 = deduplicated, 429 = queue full |
//! | `GET /runs` | list run statuses |
//! | `GET /runs/{id}` | one run's status |
//! | `GET /runs/{id}/stream?from=N` | JSONL tail of completed outcomes |
//! | `GET /runs/{id}/result` | merged result (409 until complete) |
//! | `POST /runs/{id}/cancel` | cancel (honoured between shards) |
//! | `GET /stats` | queue, counters, curve-cache and lease telemetry |
//! | `GET /healthz` | liveness |
//! | `POST /lease` | lease the next pending shard to an external worker |
//! | `POST /heartbeat` | renew a held shard lease |
//! | `POST /shards/{id}/complete` | deliver a finished shard's outcome log |
//! | `GET /status` | coordination snapshot of the active run |
//!
//! The last four are the coordination endpoints of
//! [`experiments::dist`] — the daemon *is* a sweep coordinator, so
//! external `qosrm_worker` processes drain the same per-run shard queue
//! as the in-process worker pool. Coordination `POST`s must carry the
//! explicit protocol-version header
//! ([`http::PROTO_VERSION_HEADER`]`: `[`http::PROTO_VERSION`]); a missing
//! or mismatched revision is rejected with a typed `ProtocolMismatch`
//! error, so mixed-version worker/daemon pairs fail fast.
//!
//! Errors are always typed JSON bodies ([`http::WireError`]); the run id
//! is the fingerprint of `(spec, quick)`, so identical submissions — from
//! any number of concurrent clients — deduplicate to a single run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod load;
pub mod server;
pub mod state;

/// The shared wire protocol (re-exported from [`qosrm_proto`], where it now
/// lives so the offline coordinator in [`experiments::dist`] speaks the
/// same bytes without depending on this crate).
pub use qosrm_proto::http;

pub use client::{Client, ClientError};
pub use load::{execute, plan, LoadConfig, LoadPlan, LoadReport};
pub use server::{
    run_id, CacheStats, RmaStats, RunStatus, ServeConfig, Server, StatsReport, STATS_SCHEMA,
};
pub use state::{RunMeta, RunState};
