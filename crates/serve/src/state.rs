//! Run registry, admission queue and counters of the daemon.
//!
//! The registry is the single source of truth for run state in a live
//! daemon; every transition is mirrored durably to the run's `run.json`
//! (see [`RunMeta`]) so a killed daemon recovers the same picture on
//! restart. The admission queue is *fair per client*: queued runs drain
//! round-robin over the clients that submitted them, so one client
//! enqueueing fifty sweeps cannot starve a client with one.

use experiments::ScenarioSpec;
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lifecycle of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing shards.
    Running,
    /// All scenarios complete; the merged result is available.
    Complete,
    /// Cancelled by a client (between shards; completed shards stay on
    /// disk, so a later resubmission of the same spec resumes them).
    Cancelled,
    /// Execution failed; see the run's `error`.
    Failed,
}

impl RunState {
    /// Whether the state is terminal (no worker will touch the run again
    /// without a new submission).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RunState::Complete | RunState::Cancelled | RunState::Failed
        )
    }

    /// Stable lower-case label used in status payloads and logs.
    pub fn label(self) -> &'static str {
        match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Complete => "complete",
            RunState::Cancelled => "cancelled",
            RunState::Failed => "failed",
        }
    }
}

/// The durable per-run record, persisted as `run.json` next to the run's
/// streaming manifest and shard logs.
///
/// `run.json` is daemon bookkeeping only — the sweep state itself lives in
/// the unchanged `manifest.json` + `shard-*.jsonl` format, which is what
/// keeps daemon merges byte-identical to CLI `sweep run` output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Run id: the fingerprint of `(spec, quick)`, so identical submissions
    /// deduplicate to one run.
    pub id: String,
    /// The client that first submitted the run.
    pub client: String,
    /// Whether the run uses quick-mode databases.
    pub quick: bool,
    /// Scenarios per shard.
    pub shard_size: usize,
    /// Current lifecycle state.
    pub state: RunState,
    /// Failure detail when `state` is `Failed`.
    pub error: Option<String>,
    /// The submitted spec (embedded so restart recovery needs nothing but
    /// the run directory).
    pub spec: ScenarioSpec,
}

/// File name of the durable run record within a run directory.
pub const RUN_META_FILE: &str = "run.json";

impl RunMeta {
    /// Loads the run record of a run directory.
    pub fn load(dir: &Path) -> Result<Self, QosrmError> {
        simdb::persist::load_json(&dir.join(RUN_META_FILE))
    }

    /// Durably persists the run record (fsync of file and directory: a
    /// crash right after a state transition must not roll it back).
    pub fn save(&self, dir: &Path) -> Result<(), QosrmError> {
        simdb::persist::save_json_durable(self, &dir.join(RUN_META_FILE))
    }
}

/// Round-robin-per-client admission queue.
///
/// `push` appends to the submitting client's FIFO lane; `pop` serves lanes
/// in rotation, so dequeue order interleaves clients regardless of how
/// bursty each one is. Within one client, submission order is preserved.
#[derive(Debug, Default)]
pub struct FairQueue {
    lanes: Vec<(String, VecDeque<String>)>,
    cursor: usize,
    len: usize,
}

impl FairQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        FairQueue::default()
    }

    /// Queued run count across all clients.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no runs are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues a run for a client.
    pub fn push(&mut self, client: &str, run_id: String) {
        if let Some((_, lane)) = self.lanes.iter_mut().find(|(c, _)| c == client) {
            lane.push_back(run_id);
        } else {
            let mut lane = VecDeque::new();
            lane.push_back(run_id);
            self.lanes.push((client.to_string(), lane));
        }
        self.len += 1;
    }

    /// Dequeues the next run, rotating over client lanes.
    pub fn pop(&mut self) -> Option<String> {
        if self.len == 0 {
            return None;
        }
        let lanes = self.lanes.len();
        for offset in 0..lanes {
            let index = (self.cursor + offset) % lanes;
            if let Some(run_id) = self.lanes[index].1.pop_front() {
                self.cursor = (index + 1) % lanes;
                self.len -= 1;
                return Some(run_id);
            }
        }
        None
    }

    /// Removes a queued run (cancellation before a worker claimed it).
    /// Returns whether the run was queued.
    pub fn remove(&mut self, run_id: &str) -> bool {
        for (_, lane) in self.lanes.iter_mut() {
            if let Some(pos) = lane.iter().position(|id| id == run_id) {
                lane.remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }
}

/// Monotonic counters of the daemon, exposed on `/stats`.
///
/// All counters are process-lifetime (they reset on restart — durable state
/// is the runs, not the telemetry).
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Requests parsed off the wire (any endpoint, any outcome).
    pub http_requests: AtomicU64,
    /// `POST /runs` submissions received.
    pub submissions: AtomicU64,
    /// Submissions admitted as *new* runs.
    pub admitted: AtomicU64,
    /// Submissions answered with an already-known run id.
    pub deduplicated: AtomicU64,
    /// Submissions rejected because the queue was at its bound.
    pub rejected_queue_full: AtomicU64,
    /// Submissions rejected because the spec failed to parse or lower.
    pub rejected_invalid_spec: AtomicU64,
    /// Requests rejected for exceeding a size limit.
    pub rejected_payload: AtomicU64,
    /// Runs that reached `Complete`.
    pub runs_completed: AtomicU64,
    /// Runs that reached `Cancelled`.
    pub runs_cancelled: AtomicU64,
    /// Runs that reached `Failed`.
    pub runs_failed: AtomicU64,
    /// Outcome lines written to `/stream` responses.
    pub outcomes_streamed: AtomicU64,
}

impl ServeCounters {
    /// Increments a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// The mutable registry behind the daemon's mutex: every known run plus
/// the admission queue.
#[derive(Default)]
pub struct RegistryInner {
    /// All runs known to the daemon, by id.
    pub runs: HashMap<String, RunMeta>,
    /// Admitted runs waiting for a worker.
    pub queue: FairQueue,
    /// Set once on shutdown; workers drain and exit.
    pub shutdown: bool,
}

/// Per-state tallies of the registry, reported on `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunTallies {
    /// Runs in `Queued`.
    pub queued: usize,
    /// Runs in `Running`.
    pub running: usize,
    /// Runs in `Complete`.
    pub complete: usize,
    /// Runs in `Cancelled`.
    pub cancelled: usize,
    /// Runs in `Failed`.
    pub failed: usize,
}

impl RegistryInner {
    /// Tallies runs by state.
    pub fn tallies(&self) -> RunTallies {
        let mut t = RunTallies::default();
        for run in self.runs.values() {
            match run.state {
                RunState::Queued => t.queued += 1,
                RunState::Running => t.running += 1,
                RunState::Complete => t.complete += 1,
                RunState::Cancelled => t.cancelled += 1,
                RunState::Failed => t.failed += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_queue_interleaves_clients() {
        let mut q = FairQueue::new();
        for i in 0..3 {
            q.push("a", format!("a{i}"));
        }
        q.push("b", "b0".to_string());
        q.push("c", "c0".to_string());
        assert_eq!(q.len(), 5);
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        // Client a submitted first but must not drain before b and c get a
        // turn each: rotation serves a, b, c, then a's backlog.
        assert_eq!(order, vec!["a0", "b0", "c0", "a1", "a2"]);
        assert!(q.is_empty());
    }

    #[test]
    fn fair_queue_preserves_per_client_fifo() {
        let mut q = FairQueue::new();
        for i in 0..4 {
            q.push("solo", format!("r{i}"));
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["r0", "r1", "r2", "r3"]);
    }

    #[test]
    fn fair_queue_remove_unqueues() {
        let mut q = FairQueue::new();
        q.push("a", "a0".to_string());
        q.push("a", "a1".to_string());
        assert!(q.remove("a0"));
        assert!(!q.remove("a0"));
        assert_eq!(q.pop().as_deref(), Some("a1"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn run_state_terminality_and_labels() {
        assert!(!RunState::Queued.is_terminal());
        assert!(!RunState::Running.is_terminal());
        assert!(RunState::Complete.is_terminal());
        assert!(RunState::Cancelled.is_terminal());
        assert!(RunState::Failed.is_terminal());
        assert_eq!(RunState::Running.label(), "running");
    }
}
