//! The deterministic load generator for `qosrm_serve`.
//!
//! ```text
//! qosrm_load --addr 127.0.0.1:7171 --spec examples/specs/synth_smoke.json
//!            [--clients N] [--per-client N] [--distinct N] [--seed S]
//!            [--full] [--shard-size N] [--timeout SECS]
//!            [--result FILE] [--summary FILE]
//! ```
//!
//! Submits `clients × per-client` specs (cycling over `distinct` derived
//! variants of the base spec), streams outcomes, waits for completion, and
//! byte-compares every run's merged result across reader threads. Exits
//! nonzero if any run fails, any reader observes different bytes, or any
//! rejection other than the configured queue bound occurs. `--result`
//! writes variant 0's merged bytes (for `cmp` against an offline
//! `sweep run` of the unmodified spec); `--summary` writes the full
//! [`qosrm_serve::LoadReport`] as JSON.

use experiments::ScenarioSpec;
use qosrm_serve::LoadConfig;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

fn main() {
    let mut addr_text = "127.0.0.1:7171".to_string();
    let mut spec_path: Option<PathBuf> = None;
    let mut result_path: Option<PathBuf> = None;
    let mut summary_path: Option<PathBuf> = None;
    let mut timeout_secs: u64 = 600;
    let mut config = LoadConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr_text = value("--addr"),
            "--spec" => spec_path = Some(PathBuf::from(value("--spec"))),
            "--result" => result_path = Some(PathBuf::from(value("--result"))),
            "--summary" => summary_path = Some(PathBuf::from(value("--summary"))),
            "--clients" => config.clients = parse(&value("--clients"), "--clients"),
            "--per-client" => config.per_client = parse(&value("--per-client"), "--per-client"),
            "--distinct" => config.distinct = parse(&value("--distinct"), "--distinct"),
            "--seed" => config.seed = parse(&value("--seed"), "--seed"),
            "--shard-size" => config.shard_size = parse(&value("--shard-size"), "--shard-size"),
            "--timeout" => timeout_secs = parse(&value("--timeout"), "--timeout"),
            "--full" => config.quick = false,
            "--help" | "-h" => {
                println!(
                    "usage: qosrm_load --addr HOST:PORT --spec FILE [--clients N] \
                     [--per-client N] [--distinct N] [--seed S] [--full] [--shard-size N] \
                     [--timeout SECS] [--result FILE] [--summary FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                exit(2);
            }
        }
    }

    let Some(spec_path) = spec_path else {
        eprintln!("qosrm_load: --spec is required");
        exit(2);
    };
    let spec = ScenarioSpec::load(&spec_path).unwrap_or_else(|e| {
        eprintln!("qosrm_load: cannot load {}: {e}", spec_path.display());
        exit(2);
    });
    let addr: SocketAddr = addr_text
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .unwrap_or_else(|| {
            eprintln!("qosrm_load: cannot resolve {addr_text}");
            exit(2);
        });

    let plan = qosrm_serve::plan(&spec, &config).unwrap_or_else(|e| {
        eprintln!("qosrm_load: {e}");
        exit(2);
    });
    println!(
        "submitting {} specs ({} clients x {} each, {} distinct variants) to {addr}",
        config.clients * config.per_client,
        config.clients,
        config.per_client,
        plan.specs.len()
    );
    let (report, results) =
        qosrm_serve::execute(addr, &plan, &config, Duration::from_secs(timeout_secs));

    let summary = serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_string());
    println!("{summary}");
    if let Some(path) = summary_path {
        if let Err(e) = simdb::persist::write_atomic(&path, format!("{summary}\n").as_bytes()) {
            eprintln!("qosrm_load: cannot write summary: {e}");
            exit(1);
        }
    }
    if let Some(path) = result_path {
        match results.first() {
            Some((id, bytes)) => {
                if let Err(e) = simdb::persist::write_atomic(&path, bytes) {
                    eprintln!("qosrm_load: cannot write result: {e}");
                    exit(1);
                }
                println!("wrote merged result of run {id} to {}", path.display());
            }
            None => {
                eprintln!("qosrm_load: no completed run to write as --result");
                exit(1);
            }
        }
    }

    if !report.passed() {
        eprintln!(
            "qosrm_load: FAILED ({} errors, byte_identical={}, {}/{} runs complete)",
            report.errors.len(),
            report.byte_identical,
            report.runs_completed,
            report.distinct_runs
        );
        exit(1);
    }
    println!("qosrm_load: OK");
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {raw:?}");
        exit(2);
    })
}
