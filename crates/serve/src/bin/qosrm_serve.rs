//! The resident sweep daemon.
//!
//! ```text
//! qosrm_serve --addr 127.0.0.1:7171 --data-dir serve-data [--workers N]
//!             [--max-queue N] [--max-payload BYTES] [--shard-size N]
//!             [--serial] [--shard-delay-ms MS] [--lease-ms MS] [--quiet]
//! ```
//!
//! Prints `listening on ADDR` once the socket is bound (scripts parse this
//! line), then serves until killed. All durable state lives under
//! `--data-dir`; restarting with the same directory resumes in-flight runs.

use qosrm_serve::ServeConfig;
use std::io::Write;
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let mut config = ServeConfig {
        verbose: true,
        ..Default::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--data-dir" => config.data_dir = PathBuf::from(value("--data-dir")),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--max-queue" => config.max_queue = parse(&value("--max-queue"), "--max-queue"),
            "--max-payload" => {
                config.max_payload_bytes = parse(&value("--max-payload"), "--max-payload")
            }
            "--shard-size" => {
                config.default_shard_size = parse(&value("--shard-size"), "--shard-size")
            }
            "--shard-delay-ms" => {
                config.shard_delay_ms = parse(&value("--shard-delay-ms"), "--shard-delay-ms")
            }
            "--lease-ms" => config.lease_ms = parse(&value("--lease-ms"), "--lease-ms"),
            "--serial" => config.serial = true,
            "--quiet" => config.verbose = false,
            "--help" | "-h" => {
                println!(
                    "usage: qosrm_serve [--addr HOST:PORT] [--data-dir DIR] [--workers N] \
                     [--max-queue N] [--max-payload BYTES] [--shard-size N] [--serial] \
                     [--shard-delay-ms MS] [--lease-ms MS] [--quiet]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                exit(2);
            }
        }
    }

    match qosrm_serve::Server::start(config) {
        Ok(server) => {
            // The parseable readiness line (also printed by verbose logging,
            // but scripts rely on this one regardless of --quiet).
            println!("listening on {}", server.addr());
            let _ = std::io::stdout().flush();
            // Serve until killed; the daemon has no graceful-exit signal
            // handling on purpose — durable state makes SIGKILL safe, and
            // the CI smoke exercises exactly that.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("qosrm_serve: {e}");
            exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {raw:?}");
        exit(2);
    })
}
