//! External sweep worker: drains shard leases from a coordinator.
//!
//! ```text
//! qosrm_worker --addr HOST:PORT [--worker NAME] [--run ID] [--poll-ms MS]
//!              [--shard-delay-ms MS] [--retries N]
//! ```
//!
//! The coordinator at `--addr` may be a `qosrm_serve` daemon or a
//! `qosrm_experiments sweep coordinate` process — both mount the same
//! lease/heartbeat/complete endpoints. The worker loops until the
//! coordinator reports the run finished, then prints a one-line report and
//! exits; `--run` pins it to one run id (the default empty id means "any
//! run with pending work"). Against a daemon, an any-run worker keeps
//! serving new submissions indefinitely — pin `--run` for a worker that
//! should exit when one sweep completes. Shard outcome logs travel back over
//! `POST /shards/{id}/complete` and the coordinator persists them, so a
//! worker needs no access to the run directory.

use experiments::dist::{run_worker, WorkerConfig};
use std::process::exit;

fn main() {
    let mut addr = String::new();
    let mut config = WorkerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--worker" => config.worker = value("--worker"),
            "--run" => config.run = value("--run"),
            "--poll-ms" => config.poll_ms = parse(&value("--poll-ms"), "--poll-ms"),
            "--shard-delay-ms" => {
                config.shard_delay_ms = parse(&value("--shard-delay-ms"), "--shard-delay-ms")
            }
            "--retries" => config.transport_retries = parse(&value("--retries"), "--retries"),
            "--help" | "-h" => {
                println!(
                    "usage: qosrm_worker --addr HOST:PORT [--worker NAME] [--run ID] \
                     [--poll-ms MS] [--shard-delay-ms MS] [--retries N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                exit(2);
            }
        }
    }
    if addr.is_empty() {
        eprintln!("qosrm_worker: --addr HOST:PORT is required (try --help)");
        exit(2);
    }
    match run_worker(&addr, &config) {
        Ok(report) => {
            println!(
                "worker {}: {} shard(s) accepted, {} stale, {} scenario(s) evaluated",
                config.worker, report.shards_completed, report.shards_stale, report.scenarios
            );
        }
        Err(e) => {
            eprintln!("qosrm_worker: {e}");
            exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {raw:?}");
        exit(2);
    })
}
