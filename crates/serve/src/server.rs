//! The resident sweep daemon: listener, router, worker pool, recovery.
//!
//! ## Execution model
//!
//! One accept thread hands each connection to a short-lived handler thread
//! (one request per connection — the protocol is deliberately stateless),
//! and a bounded pool of worker threads drains the admission queue. The
//! worker that claims a run opens an [`experiments::dist::Coordinator`]
//! over its directory and executes it **one leased shard at a time**, so
//! every shard boundary is a checkpoint: cancellation is honoured between
//! shards, a SIGKILL loses at most the leases in flight, and a restarted
//! daemon resumes from the manifest (reclaiming its own dead workers'
//! leases immediately, while external workers' leases survive). Because
//! the daemon *is* the coordinator, external `qosrm_worker` processes can
//! attach to `POST /lease` / `POST /heartbeat` /
//! `POST /shards/{id}/complete` and drain the same per-run shard queue the
//! in-process workers draw from.
//!
//! ## Backpressure
//!
//! Admission is bounded: at most [`ServeConfig::max_queue`] runs may be
//! queued (running runs do not count). A submission over the bound is
//! rejected with HTTP 429 / kind `QueueFull` — never silently dropped or
//! buffered — and queued runs drain fairly per client
//! ([`crate::state::FairQueue`]). Request bodies over
//! [`ServeConfig::max_payload_bytes`] are refused with 413 /
//! `PayloadTooLarge` before the spec is even parsed.

use crate::http::{
    read_request, write_error, write_json, write_response, write_stream_head, Request,
    RequestError, WireError,
};
use crate::state::{RegistryInner, RunMeta, RunState, RunTallies, ServeCounters, RUN_META_FILE};
use experiments::dist::{self, Coordinator, CoordinatorConfig};
use experiments::{
    ExperimentContext, LeaseCounters, LockUnpoisoned, ScenarioSpec, SweepManifest, SweepOptions,
    WaitUnpoisoned,
};
use qosrm_core::RmaWorkCounters;
use qosrm_proto::{CompleteRequest, LeaseTelemetry};
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Root of the daemon's durable state: run directories live under
    /// `<data_dir>/runs/<id>/`, database caches under `<data_dir>/cache/`.
    pub data_dir: PathBuf,
    /// Worker threads executing runs.
    pub workers: usize,
    /// Bound on *queued* (not running) runs; submissions beyond it are
    /// rejected with `QueueFull`.
    pub max_queue: usize,
    /// Bound on request bodies in bytes (submissions and external-worker
    /// shard completions alike — size shards so their outcome logs fit).
    pub max_payload_bytes: usize,
    /// Shard size used when a submission does not specify one.
    pub default_shard_size: usize,
    /// Evaluate scenarios serially within each run (deterministic counter
    /// sequencing for benchmarks; memoization stays on).
    pub serial: bool,
    /// Poll interval of `/stream` tails and worker cancellation checks.
    pub poll_interval_ms: u64,
    /// Artificial pause between shards (0 in production; tests and demos
    /// use it to exercise mid-run cancellation and kill windows
    /// deterministically).
    pub shard_delay_ms: u64,
    /// Shard-lease duration handed to workers (in-process and external
    /// `qosrm_worker` processes alike); a worker that goes silent for this
    /// long forfeits its shard, which is reinjected for someone else.
    pub lease_ms: u64,
    /// Log requests and run transitions to stdout.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("serve-data"),
            workers: 2,
            max_queue: 64,
            max_payload_bytes: 1024 * 1024,
            default_shard_size: 8,
            serial: false,
            poll_interval_ms: 25,
            shard_delay_ms: 0,
            lease_ms: 30_000,
            verbose: false,
        }
    }
}

/// One run's status snapshot, as served on `GET /runs/{id}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStatus {
    /// Run id.
    pub id: String,
    /// Lifecycle state label (`queued`/`running`/`complete`/`cancelled`/
    /// `failed`).
    pub state: String,
    /// Submitting client.
    pub client: String,
    /// Whether the run uses quick-mode databases.
    pub quick: bool,
    /// Scenarios per shard.
    pub shard_size: usize,
    /// Total scenarios of the sweep.
    pub total_scenarios: usize,
    /// Scenarios completed on disk.
    pub completed_scenarios: usize,
    /// Completed shard count.
    pub shards: usize,
    /// Failure detail when failed.
    pub error: Option<String>,
}

/// Curve-cache telemetry of one database mode, as reported on `/stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Database mode the context serves (`quick` or `full`).
    pub mode: String,
    /// Entries resident in the cache.
    pub entries: usize,
    /// Lookup hits since daemon start.
    pub hits: u64,
    /// Lookup misses since daemon start.
    pub misses: u64,
    /// Capacity evictions (wholesale shard clears) since daemon start.
    pub evictions: u64,
    /// Entries discarded by those evictions.
    pub evicted_entries: u64,
    /// hits / (hits + misses), 0 when idle.
    pub hit_rate: f64,
}

/// Measured RMA optimization work of one database mode, as reported on
/// `/stats`. The daemon's sweeps run with the incremental delta path on,
/// so `delta_invocations` / `warm_rows_reused` / `chunked_conv_lanes`
/// report how much convolution and curve-building work the resident
/// process actually skipped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RmaStats {
    /// Database mode the context serves (`quick` or `full`).
    pub mode: String,
    /// Aggregated [`RmaWorkCounters`] of every manager the mode's sweeps
    /// evaluated since daemon start.
    pub counters: RmaWorkCounters,
}

/// Counter snapshot within the `/stats` payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Requests parsed off the wire.
    pub http_requests: u64,
    /// `POST /runs` submissions received.
    pub submissions: u64,
    /// Submissions admitted as new runs.
    pub admitted: u64,
    /// Submissions answered with an existing run id.
    pub deduplicated: u64,
    /// Submissions rejected at the queue bound.
    pub rejected_queue_full: u64,
    /// Submissions with unparsable or unlowerable specs.
    pub rejected_invalid_spec: u64,
    /// Requests over a size limit.
    pub rejected_payload: u64,
    /// Runs that completed.
    pub runs_completed: u64,
    /// Runs that were cancelled.
    pub runs_cancelled: u64,
    /// Runs that failed.
    pub runs_failed: u64,
    /// Outcome lines written to `/stream` responses.
    pub outcomes_streamed: u64,
}

/// The `/stats` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Payload schema identifier.
    pub schema: String,
    /// Queued runs right now.
    pub queue_depth: usize,
    /// The admission bound.
    pub queue_max: usize,
    /// Worker thread count.
    pub workers: usize,
    /// Registry tallies by state.
    pub runs: RunTallies,
    /// Monotonic counters.
    pub counters: CounterSnapshot,
    /// Curve-cache telemetry per active database mode.
    pub curve_cache: Vec<CacheStats>,
    /// Measured RMA work per active database mode (delta-path and
    /// chunked-kernel counters included).
    pub rma: Vec<RmaStats>,
    /// Lease-protocol telemetry across all coordinated runs (grants,
    /// renewals, expiries, reinjections, stale rejections, per-worker
    /// completions) — process-lifetime, like the other counters.
    pub leases: LeaseTelemetry,
}

/// Schema identifier of the `/stats` payload.
pub const STATS_SCHEMA: &str = "qosrm-serve/v1";

/// Name prefix of the daemon's in-process worker threads. Leases held
/// under this prefix cannot outlive the process, so a restarted daemon
/// reclaims them immediately (see [`CoordinatorConfig::reclaim_prefix`]).
const WORKER_PREFIX: &str = "qosrm-serve-worker-";

struct Shared {
    config: ServeConfig,
    registry: Mutex<RegistryInner>,
    work: Condvar,
    counters: ServeCounters,
    contexts: Mutex<HashMap<bool, Arc<ExperimentContext>>>,
    /// One coordinator per *live* (Running) run, shared between the worker
    /// thread executing the run and connection threads serving the
    /// coordination endpoints to external workers.
    coordinators: Mutex<HashMap<String, Arc<Coordinator>>>,
    /// Lease-protocol telemetry, shared by every coordinator the daemon
    /// opens (process-lifetime, reported on `/stats`).
    lease_counters: Arc<LeaseCounters>,
    shutdown: AtomicBool,
}

impl Shared {
    fn runs_root(&self) -> PathBuf {
        self.config.data_dir.join("runs")
    }

    fn run_dir(&self, id: &str) -> PathBuf {
        self.runs_root().join(id)
    }

    fn log(&self, line: &str) {
        if self.config.verbose {
            println!("[serve] {line}");
            let _ = std::io::stdout().flush();
        }
    }

    /// The lazily-built experiment context of a database mode. All runs of
    /// one mode share it — and with it the process-wide curve cache and
    /// database memo, which is the whole point of a resident daemon.
    fn context_for(&self, quick: bool) -> Arc<ExperimentContext> {
        let mut contexts = self.contexts.lock_unpoisoned();
        contexts
            .entry(quick)
            .or_insert_with(|| {
                // The daemon always runs managers on the incremental delta
                // path: recurring per-core observations skip curve builds
                // and the global step warm-starts, which is exactly the
                // per-invocation cost a resident serving process cares
                // about. Results are bit-identical to the cold path.
                let sweep = if self.config.serial {
                    // Serial but memoized: `SweepOptions::serial()` would
                    // also disable memoization, which the serving bench
                    // relies on for deterministic hit/miss counters.
                    SweepOptions {
                        parallel: false,
                        memoize: true,
                        incremental: true,
                    }
                } else {
                    SweepOptions {
                        incremental: true,
                        ..SweepOptions::default()
                    }
                };
                Arc::new(
                    ExperimentContext::new(quick)
                        .with_cache_dir(self.config.data_dir.join("cache"))
                        .with_sweep_options(sweep),
                )
            })
            .clone()
    }

    /// The coordinator a coordination request resolves to: a named run's
    /// coordinator, or — for the empty "any run" id — the first live
    /// coordinator (by run id) with work left.
    fn coordinator_of(&self, run: &str) -> Option<Arc<Coordinator>> {
        let coordinators = self.coordinators.lock_unpoisoned();
        if run.is_empty() {
            let mut ids: Vec<&String> = coordinators.keys().collect();
            ids.sort();
            ids.into_iter()
                .map(|id| coordinators[id].clone())
                .find(|coordinator| !coordinator.finished())
        } else {
            coordinators.get(run).cloned()
        }
    }

    /// Builds a status snapshot of a run (reads the streaming manifest for
    /// completion counts).
    fn status_of(&self, meta: &RunMeta) -> RunStatus {
        let dir = self.run_dir(&meta.id);
        let (total, completed, shards) = match SweepManifest::load(&dir) {
            Ok(manifest) => (
                manifest.total_scenarios,
                manifest.completed_scenarios,
                manifest.shards.len(),
            ),
            Err(_) => (
                meta.spec.lower().map(|grid| grid.len()).unwrap_or_default(),
                0,
                0,
            ),
        };
        RunStatus {
            id: meta.id.clone(),
            state: meta.state.label().to_string(),
            client: meta.client.clone(),
            quick: meta.quick,
            shard_size: meta.shard_size,
            total_scenarios: total,
            completed_scenarios: completed,
            shards,
            error: meta.error.clone(),
        }
    }

    /// Transitions a run's registry state and durably persists the record.
    fn set_state(&self, id: &str, state: RunState, error: Option<String>) {
        let mut registry = self.registry.lock_unpoisoned();
        if let Some(meta) = registry.runs.get_mut(id) {
            meta.state = state;
            meta.error = error;
            let meta = meta.clone();
            drop(registry);
            let _ = meta.save(&self.run_dir(id));
            self.log(&format!("run {id} -> {}", state.label()));
        }
    }

    /// The registry state of a run right now.
    fn state_of(&self, id: &str) -> Option<RunState> {
        self.registry
            .lock()
            .unwrap()
            .runs
            .get(id)
            .map(|meta| meta.state)
    }
}

/// Deterministic run id of a submission: the fingerprint of the spec plus
/// the database mode. Identical submissions — retries, concurrent clients,
/// resubmission after a daemon restart — map to one run.
pub fn run_id(spec: &ScenarioSpec, quick: bool) -> String {
    let digest = qosrm_core::memo::fingerprint(spec);
    format!(
        "r{:016x}{:016x}{}",
        digest.0,
        digest.1,
        if quick { "q" } else { "f" }
    )
}

/// A running daemon instance. Dropping it does *not* stop the threads —
/// call [`Server::stop`] (the binary instead runs until killed).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers persisted runs, and starts the worker pool and
    /// accept loop.
    ///
    /// Binding retries on `AddrInUse` for a bounded window: a restarted
    /// daemon must be able to reclaim its fixed port while the kernel
    /// still holds the killed process's sockets in TIME_WAIT.
    pub fn start(config: ServeConfig) -> Result<Server, QosrmError> {
        let listener = bind_with_retry(&config.addr)?;
        let addr = listener
            .local_addr()
            .map_err(|e| QosrmError::Io(e.to_string()))?;
        let shared = Arc::new(Shared {
            config,
            registry: Mutex::new(RegistryInner::default()),
            work: Condvar::new(),
            counters: ServeCounters::default(),
            contexts: Mutex::new(HashMap::new()),
            coordinators: Mutex::new(HashMap::new()),
            lease_counters: Arc::new(LeaseCounters::default()),
            shutdown: AtomicBool::new(false),
        });
        fs::create_dir_all(shared.runs_root())?;
        recover_runs(&shared)?;

        let mut worker_handles = Vec::new();
        for index in 0..shared.config.workers.max(1) {
            let shared = shared.clone();
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("qosrm-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| QosrmError::Io(e.to_string()))?,
            );
        }
        let accept_shared = shared.clone();
        let accept_handle = thread::Builder::new()
            .name("qosrm-serve-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_shared))
            .map_err(|e| QosrmError::Io(e.to_string()))?;

        shared.log(&format!("listening on {addr}"));
        Ok(Server {
            addr,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (with the resolved port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and workers and joins them. In-flight shards
    /// finish; queued runs stay durably queued for the next start.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut registry = self.shared.registry.lock_unpoisoned();
            registry.shutdown = true;
        }
        self.shared.work.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn bind_with_retry(addr: &str) -> Result<TcpListener, QosrmError> {
    let mut last_err = None;
    for _ in 0..40 {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                last_err = Some(e);
                thread::sleep(Duration::from_millis(250));
            }
            Err(e) => return Err(QosrmError::Io(format!("cannot bind {addr}: {e}"))),
        }
    }
    Err(QosrmError::Io(format!(
        "cannot bind {addr}: {}",
        last_err.map(|e| e.to_string()).unwrap_or_default()
    )))
}

/// Re-registers persisted runs on startup. Non-terminal runs (queued, or
/// running when the previous process died) are re-queued: their manifest
/// and shard logs are intact, so the worker resumes exactly where the old
/// process stopped.
fn recover_runs(shared: &Arc<Shared>) -> Result<(), QosrmError> {
    let root = shared.runs_root();
    let mut recovered = Vec::new();
    for entry in fs::read_dir(&root)? {
        let dir = entry?.path();
        if !dir.join(RUN_META_FILE).is_file() {
            continue;
        }
        match RunMeta::load(&dir) {
            Ok(meta) => recovered.push(meta),
            Err(e) => shared.log(&format!(
                "skipping unreadable run record {}: {e}",
                dir.display()
            )),
        }
    }
    recovered.sort_by(|a, b| a.id.cmp(&b.id));
    let mut registry = shared.registry.lock_unpoisoned();
    for mut meta in recovered {
        if !meta.state.is_terminal() {
            meta.state = RunState::Queued;
            let _ = meta.save(&shared.run_dir(&meta.id));
            registry.queue.push(&meta.client.clone(), meta.id.clone());
            shared.log(&format!("recovered run {} (re-queued)", meta.id));
        }
        registry.runs.insert(meta.id.clone(), meta);
    }
    drop(registry);
    shared.work.notify_all();
    Ok(())
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = shared.clone();
        let _ = thread::Builder::new()
            .name("qosrm-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream, shared.config.max_payload_bytes) {
        Ok(request) => request,
        Err(RequestError::Closed) => return,
        Err(RequestError::TooLarge { limit }) => {
            ServeCounters::bump(&shared.counters.rejected_payload);
            let _ = write_error(
                &mut stream,
                413,
                "Payload Too Large",
                &WireError::new(
                    "PayloadTooLarge",
                    format!("request exceeds the {limit}-byte limit"),
                ),
            );
            drain(&mut stream);
            return;
        }
        Err(RequestError::Malformed(detail)) => {
            let _ = write_error(
                &mut stream,
                400,
                "Bad Request",
                &WireError::new("MalformedRequest", detail),
            );
            drain(&mut stream);
            return;
        }
    };
    ServeCounters::bump(&shared.counters.http_requests);
    shared.log(&format!("{} {}", request.method, request.path));
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let result = match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["runs"]) => handle_submit(&mut stream, shared, &request),
        ("GET", ["runs"]) => handle_list(&mut stream, shared),
        ("GET", ["runs", id]) => handle_status(&mut stream, shared, id),
        ("GET", ["runs", id, "stream"]) => handle_stream(&mut stream, shared, id, &request),
        ("GET", ["runs", id, "result"]) => handle_result(&mut stream, shared, id),
        ("POST", ["runs", id, "cancel"]) => handle_cancel(&mut stream, shared, id),
        ("GET", ["stats"]) => handle_stats(&mut stream, shared),
        ("GET", ["healthz"]) => write_response(&mut stream, 200, "OK", "text/plain", b"ok\n"),
        (method, _) if method != "GET" && method != "POST" => write_error(
            &mut stream,
            405,
            "Method Not Allowed",
            &WireError::new("MethodNotAllowed", format!("method {method} not supported")),
        ),
        // Everything else falls through to the shared coordination router:
        // `POST /lease`, `POST /heartbeat`, `POST /shards/{id}/complete`,
        // and `GET /status` — the same endpoints `sweep coordinate` mounts,
        // resolved against this daemon's per-run coordinator map.
        _ => handle_coordination(&mut stream, shared, &request),
    };
    let _ = result;
}

fn handle_coordination(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
) -> std::io::Result<()> {
    let resolve = |run: &str| {
        if let Some(coordinator) = shared.coordinator_of(run) {
            return dist::Resolution::Coordinated(coordinator);
        }
        if run.is_empty() {
            // No live coordinator right now, but a submission may arrive
            // any moment: any-run workers stay attached and retry.
            return dist::Resolution::Pending;
        }
        match shared.state_of(run) {
            Some(state) if state.is_terminal() => dist::Resolution::Finished,
            // Admitted but not yet claimed by a worker thread (or mid
            // requeue after a shutdown): the coordinator will appear.
            Some(_) => dist::Resolution::Pending,
            None => dist::Resolution::Unknown,
        }
    };
    if dist::respond_coordination(stream, request, &resolve)? {
        Ok(())
    } else {
        write_error(
            stream,
            404,
            "Not Found",
            &WireError::new("NotFound", format!("no such endpoint: {}", request.path)),
        )
    }
}

/// Discards whatever the peer is still sending (bounded) before the socket
/// drops. Closing with unread bytes in the receive buffer makes the kernel
/// send RST, which can destroy the queued error response before the client
/// reads it.
fn drain(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut sink = [0u8; 8192];
    let mut total = 0usize;
    while let Ok(n) = stream.read(&mut sink) {
        if n == 0 {
            break;
        }
        total += n;
        if total > 4 * 1024 * 1024 {
            break;
        }
    }
}

fn handle_submit(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
) -> std::io::Result<()> {
    ServeCounters::bump(&shared.counters.submissions);
    let client = request.header("x-client").unwrap_or("anon").to_string();
    let quick = request.query_param("quick") != Some("false");
    let shard_size = request
        .query_param("shard_size")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(shared.config.default_shard_size)
        .max(1);

    let body = String::from_utf8_lossy(&request.body).into_owned();
    let spec: ScenarioSpec = match serde_json::from_str(&body) {
        Ok(spec) => spec,
        Err(e) => {
            ServeCounters::bump(&shared.counters.rejected_invalid_spec);
            return write_error(
                stream,
                400,
                "Bad Request",
                &WireError::new("InvalidSpec", format!("spec does not parse: {e}")),
            );
        }
    };
    if let Err(e) = spec.lower() {
        ServeCounters::bump(&shared.counters.rejected_invalid_spec);
        return write_error(
            stream,
            400,
            "Bad Request",
            &WireError::new("InvalidSpec", format!("spec does not lower: {e}")),
        );
    }

    let id = run_id(&spec, quick);
    let response = {
        let mut registry = shared.registry.lock_unpoisoned();
        if let Some(meta) = registry.runs.get(&id) {
            ServeCounters::bump(&shared.counters.deduplicated);
            (200, "OK", shared.status_of(meta))
        } else if registry.queue.len() >= shared.config.max_queue {
            ServeCounters::bump(&shared.counters.rejected_queue_full);
            drop(registry);
            return write_error(
                stream,
                429,
                "Too Many Requests",
                &WireError::new(
                    "QueueFull",
                    format!(
                        "admission queue is at its {}-run bound; retry later",
                        shared.config.max_queue
                    ),
                ),
            );
        } else {
            let meta = RunMeta {
                id: id.clone(),
                client: client.clone(),
                quick,
                shard_size,
                state: RunState::Queued,
                error: None,
                spec,
            };
            // Persist before acknowledging: an admission the daemon
            // confirmed must survive an immediate kill.
            let dir = shared.run_dir(&id);
            if let Err(e) = fs::create_dir_all(&dir)
                .map_err(QosrmError::from)
                .and_then(|()| meta.save(&dir))
            {
                drop(registry);
                return write_error(
                    stream,
                    500,
                    "Internal Server Error",
                    &WireError::new("Internal", format!("cannot persist run: {e}")),
                );
            }
            ServeCounters::bump(&shared.counters.admitted);
            let status = shared.status_of(&meta);
            registry.runs.insert(id.clone(), meta);
            registry.queue.push(&client, id.clone());
            (202, "Accepted", status)
        }
    };
    shared.work.notify_one();
    let (status, reason, payload) = response;
    let body = serde_json::to_string(&payload).unwrap_or_else(|_| "{}".to_string());
    write_json(stream, status, reason, &body)
}

fn handle_list(stream: &mut TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let statuses: Vec<RunStatus> = {
        let registry = shared.registry.lock_unpoisoned();
        let mut metas: Vec<RunMeta> = registry.runs.values().cloned().collect();
        metas.sort_by(|a, b| a.id.cmp(&b.id));
        metas.iter().map(|meta| shared.status_of(meta)).collect()
    };
    let body = serde_json::to_string(&statuses).unwrap_or_else(|_| "[]".to_string());
    write_json(stream, 200, "OK", &body)
}

fn handle_status(stream: &mut TcpStream, shared: &Arc<Shared>, id: &str) -> std::io::Result<()> {
    let status = {
        let registry = shared.registry.lock_unpoisoned();
        registry.runs.get(id).map(|meta| shared.status_of(meta))
    };
    match status {
        Some(status) => {
            let body = serde_json::to_string(&status).unwrap_or_else(|_| "{}".to_string());
            write_json(stream, 200, "OK", &body)
        }
        None => write_error(
            stream,
            404,
            "Not Found",
            &WireError::new("RunNotFound", format!("no run with id {id}")),
        ),
    }
}

/// Streams completed outcome lines as JSONL, tailing the run until it
/// reaches a terminal state. `?from=N` skips the first `N` lines (a client
/// reconnecting after a daemon restart resumes its cursor).
fn handle_stream(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    id: &str,
    request: &Request,
) -> std::io::Result<()> {
    if shared.state_of(id).is_none() {
        return write_error(
            stream,
            404,
            "Not Found",
            &WireError::new("RunNotFound", format!("no run with id {id}")),
        );
    }
    let mut cursor = request
        .query_param("from")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    write_stream_head(stream, "application/jsonl")?;
    let dir = shared.run_dir(id);
    // State first, lines second: if the state was already terminal, the
    // lines read below are guaranteed complete.
    while let Some(state) = shared.state_of(id) {
        let lines = outcome_lines(&dir);
        if lines.len() > cursor {
            let mut chunk = String::new();
            for line in &lines[cursor..] {
                chunk.push_str(line);
                chunk.push('\n');
            }
            ServeCounters::add(
                &shared.counters.outcomes_streamed,
                (lines.len() - cursor) as u64,
            );
            cursor = lines.len();
            stream.write_all(chunk.as_bytes())?;
            stream.flush()?;
        }
        if state.is_terminal() || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        thread::sleep(Duration::from_millis(shared.config.poll_interval_ms));
    }
    Ok(())
}

/// All completed outcome lines of a run directory, in shard order. Shard
/// logs are written atomically, so any visible file is complete.
fn outcome_lines(dir: &Path) -> Vec<String> {
    let mut files: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
                name.map(|n| n.starts_with("shard-") && n.ends_with(".jsonl"))
                    .unwrap_or(false)
            })
            .collect(),
        Err(_) => return Vec::new(),
    };
    files.sort();
    let mut lines = Vec::new();
    for file in files {
        if let Ok(text) = fs::read_to_string(&file) {
            lines.extend(
                text.lines()
                    .filter(|l| !l.trim().is_empty())
                    .map(String::from),
            );
        }
    }
    lines
}

fn handle_result(stream: &mut TcpStream, shared: &Arc<Shared>, id: &str) -> std::io::Result<()> {
    let state = match shared.state_of(id) {
        Some(state) => state,
        None => {
            return write_error(
                stream,
                404,
                "Not Found",
                &WireError::new("RunNotFound", format!("no run with id {id}")),
            )
        }
    };
    if state != RunState::Complete {
        return write_error(
            stream,
            409,
            "Conflict",
            &WireError::new(
                "RunNotComplete",
                format!(
                    "run {id} is {}; the result exists once it is complete",
                    state.label()
                ),
            ),
        );
    }
    match experiments::stream::merge(&shared.run_dir(id)) {
        Ok(result) => {
            // The exact bytes `SweepResult::save` writes for the offline
            // CLI path — the serving contract is byte-identity with it.
            let body =
                serde_json::to_string(&result).map_err(|e| std::io::Error::other(e.to_string()))?;
            write_response(stream, 200, "OK", "application/json", body.as_bytes())
        }
        Err(e) => write_error(
            stream,
            500,
            "Internal Server Error",
            &WireError::new("Internal", format!("merge failed: {e}")),
        ),
    }
}

fn handle_cancel(stream: &mut TcpStream, shared: &Arc<Shared>, id: &str) -> std::io::Result<()> {
    let status = {
        let mut registry = shared.registry.lock_unpoisoned();
        match registry.runs.get(id).map(|meta| meta.state) {
            None => None,
            Some(state) => {
                if state == RunState::Queued {
                    registry.queue.remove(id);
                }
                if !state.is_terminal() {
                    let meta = registry.runs.get_mut(id).unwrap();
                    meta.state = RunState::Cancelled;
                    let snapshot = meta.clone();
                    ServeCounters::bump(&shared.counters.runs_cancelled);
                    drop(registry);
                    let _ = snapshot.save(&shared.run_dir(id));
                    shared.log(&format!("run {id} -> cancelled"));
                    Some(shared.status_of(&snapshot))
                } else {
                    let meta = registry.runs.get(id).unwrap().clone();
                    drop(registry);
                    Some(shared.status_of(&meta))
                }
            }
        }
    };
    match status {
        Some(status) => {
            let body = serde_json::to_string(&status).unwrap_or_else(|_| "{}".to_string());
            write_json(stream, 200, "OK", &body)
        }
        None => write_error(
            stream,
            404,
            "Not Found",
            &WireError::new("RunNotFound", format!("no run with id {id}")),
        ),
    }
}

fn handle_stats(stream: &mut TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let (queue_depth, tallies) = {
        let registry = shared.registry.lock_unpoisoned();
        (registry.queue.len(), registry.tallies())
    };
    let c = &shared.counters;
    let counters = CounterSnapshot {
        http_requests: ServeCounters::read(&c.http_requests),
        submissions: ServeCounters::read(&c.submissions),
        admitted: ServeCounters::read(&c.admitted),
        deduplicated: ServeCounters::read(&c.deduplicated),
        rejected_queue_full: ServeCounters::read(&c.rejected_queue_full),
        rejected_invalid_spec: ServeCounters::read(&c.rejected_invalid_spec),
        rejected_payload: ServeCounters::read(&c.rejected_payload),
        runs_completed: ServeCounters::read(&c.runs_completed),
        runs_cancelled: ServeCounters::read(&c.runs_cancelled),
        runs_failed: ServeCounters::read(&c.runs_failed),
        outcomes_streamed: ServeCounters::read(&c.outcomes_streamed),
    };
    let (curve_cache, rma) = {
        let contexts = shared.contexts.lock_unpoisoned();
        let mut stats: Vec<CacheStats> = contexts
            .iter()
            .map(|(quick, ctx)| {
                let cache = ctx.curve_cache();
                CacheStats {
                    mode: if *quick { "quick" } else { "full" }.to_string(),
                    entries: cache.len(),
                    hits: cache.hits(),
                    misses: cache.misses(),
                    evictions: cache.evictions(),
                    evicted_entries: cache.evicted_entries(),
                    hit_rate: cache.hit_rate(),
                }
            })
            .collect();
        stats.sort_by(|a, b| a.mode.cmp(&b.mode));
        let mut rma: Vec<RmaStats> = contexts
            .iter()
            .map(|(quick, ctx)| RmaStats {
                mode: if *quick { "quick" } else { "full" }.to_string(),
                counters: ctx.rma_telemetry().snapshot(),
            })
            .collect();
        rma.sort_by(|a, b| a.mode.cmp(&b.mode));
        (stats, rma)
    };
    let report = StatsReport {
        schema: STATS_SCHEMA.to_string(),
        queue_depth,
        queue_max: shared.config.max_queue,
        workers: shared.config.workers.max(1),
        runs: tallies,
        counters,
        curve_cache,
        rma,
        leases: shared.lease_counters.snapshot(),
    };
    let body = serde_json::to_string(&report).unwrap_or_else(|_| "{}".to_string());
    write_json(stream, 200, "OK", &body)
}

/// Worker: claims queued runs and executes them shard by shard, honouring
/// cancellation and shutdown at every shard boundary.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let claimed = {
            let mut registry = shared.registry.lock_unpoisoned();
            loop {
                if registry.shutdown {
                    break None;
                }
                if let Some(id) = registry.queue.pop() {
                    // A cancellation may have raced the pop.
                    match registry.runs.get(&id).map(|meta| meta.state) {
                        Some(RunState::Queued) => break Some(id),
                        _ => continue,
                    }
                }
                registry = shared.work.wait_unpoisoned(registry);
            }
        };
        let Some(id) = claimed else { return };
        shared.set_state(&id, RunState::Running, None);
        execute_run(shared, &id);
    }
}

/// Executes a run as its coordinator: the worker thread leases shards to
/// itself through the same [`Coordinator`] the daemon's coordination
/// endpoints expose, so external `qosrm_worker` processes drain the very
/// same queue. Every shard boundary remains a checkpoint — cancellation is
/// honoured between shards, and durable lease records make a SIGKILL lose
/// at most the leases in flight (reclaimed on the next start).
fn execute_run(shared: &Arc<Shared>, id: &str) {
    let meta = {
        let registry = shared.registry.lock_unpoisoned();
        match registry.runs.get(id) {
            Some(meta) => meta.clone(),
            None => return,
        }
    };
    let ctx = shared.context_for(meta.quick);
    let dir = shared.run_dir(id);
    let config = CoordinatorConfig {
        shard_size: meta.shard_size,
        lease_ms: shared.config.lease_ms.max(100),
        retry_ms: shared.config.poll_interval_ms.max(10),
        serial: shared.config.serial,
        verbose: false,
        reclaim_prefix: WORKER_PREFIX.to_string(),
    };
    let coordinator = match Coordinator::open(
        id,
        &meta.spec,
        meta.quick,
        &dir,
        &config,
        shared.lease_counters.clone(),
    ) {
        Ok(coordinator) => Arc::new(coordinator),
        Err(e) => {
            fail_run(shared, id, &e);
            return;
        }
    };
    shared
        .coordinators
        .lock_unpoisoned()
        .insert(id.to_string(), coordinator.clone());
    let worker = thread::current()
        .name()
        .unwrap_or("qosrm-serve-worker-?")
        .to_string();
    // A state other than Running means a racing cancel handler already
    // persisted the terminal state; stop leasing immediately.
    while shared.state_of(id) == Some(RunState::Running) {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Leave the run re-queueable: the next start recovers it.
            shared.set_state(id, RunState::Queued, None);
            break;
        }
        let reply = match coordinator.lease_shard(&worker) {
            Ok(reply) => reply,
            Err(e) => {
                fail_run(shared, id, &e);
                break;
            }
        };
        let Some(grant) = reply.grant else {
            if reply.finished {
                // Only transition if nothing else (a racing cancel)
                // already did.
                if shared.state_of(id) == Some(RunState::Running) {
                    shared.set_state(id, RunState::Complete, None);
                    ServeCounters::bump(&shared.counters.runs_completed);
                }
                break;
            }
            // Nothing pending right now, but external workers hold live
            // leases: wait for them to land (or expire and reinject).
            thread::sleep(Duration::from_millis(
                shared.config.poll_interval_ms.max(10),
            ));
            continue;
        };
        let delivered = dist::evaluate_grant(&*coordinator, &worker, &grant, &ctx).and_then(
            |(outcomes_jsonl, curve_hits, curve_misses)| {
                coordinator.deliver(&CompleteRequest {
                    worker: worker.clone(),
                    run: grant.run.clone(),
                    shard: grant.shard,
                    epoch: grant.epoch,
                    outcomes_jsonl,
                    curve_hits,
                    curve_misses,
                })
            },
        );
        if let Err(e) = delivered {
            fail_run(shared, id, &e);
            break;
        }
        if shared.config.shard_delay_ms > 0 {
            thread::sleep(Duration::from_millis(shared.config.shard_delay_ms));
        }
    }
    // The run left Running (terminal, re-queued, or failed): stop serving
    // leases for it. Late external completions resolve as stale.
    shared.coordinators.lock_unpoisoned().remove(id);
}

fn fail_run(shared: &Arc<Shared>, id: &str, e: &QosrmError) {
    if shared.state_of(id) == Some(RunState::Running) {
        shared.set_state(id, RunState::Failed, Some(e.to_string()));
        ServeCounters::bump(&shared.counters.runs_failed);
    }
}
