//! The load generator behind `qosrm_load`: a deterministic plan of spec
//! submissions, hammered at the daemon from many client threads, with every
//! merged result byte-compared across readers.
//!
//! Determinism matters twice: the CI smoke must be reproducible (same seed
//! → same specs → same run ids → same merged bytes), and the serving
//! benchmark exact-compares counters derived from the plan. So the plan is
//! pure: variant `i` of a base spec rewrites synthetic workload seeds with
//! a SplitMix64 stream keyed on `(seed, i)` and suffixes the sweep name —
//! no clocks, no RNG state shared between threads.

use crate::client::{Client, ClientError};
use experiments::spec::WorkloadSource;
use experiments::{LockUnpoisoned, ScenarioSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Shape of a load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Submissions per client thread.
    pub per_client: usize,
    /// Distinct spec variants the submissions cycle over (1 = every
    /// submission is the same spec and deduplicates to one run).
    pub distinct: usize,
    /// Seed of the variant derivation.
    pub seed: u64,
    /// Database mode requested for every run.
    pub quick: bool,
    /// Shard size requested for every run.
    pub shard_size: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            per_client: 4,
            distinct: 1,
            seed: 7,
            quick: true,
            shard_size: 4,
        }
    }
}

/// A deterministic submission plan: the distinct spec variants, already
/// serialized (every thread submits identical bytes for a given variant).
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// The distinct specs, in variant order.
    pub specs: Vec<ScenarioSpec>,
    /// Serialized form of each spec.
    pub payloads: Vec<String>,
}

/// SplitMix64 finalizer, keyed on the plan seed and variant index.
fn variant_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0x2545_f491_4f6c_dd1d));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the deterministic submission plan for a base spec.
///
/// Variant 0 is the base spec verbatim (so a CI smoke's reference `sweep
/// run` of the unmodified spec file matches run ids with the load run);
/// variants 1..distinct rewrite every synthetic workload seed and suffix
/// the name. A base spec without synthetic sources still yields distinct
/// run ids (the name is part of the fingerprint), just over identical
/// scenario grids.
pub fn plan(base: &ScenarioSpec, config: &LoadConfig) -> Result<LoadPlan, String> {
    let distinct = config.distinct.max(1);
    let mut specs = Vec::with_capacity(distinct);
    let mut payloads = Vec::with_capacity(distinct);
    for index in 0..distinct {
        let mut spec = base.clone();
        if index > 0 {
            spec.name = format!("{}-v{index}", base.name);
            for (axis_no, axis) in spec.platforms.iter_mut().enumerate() {
                if let WorkloadSource::Synth(synth) = &mut axis.workloads {
                    synth.seed = variant_seed(config.seed, (index * 1009 + axis_no) as u64);
                }
            }
        }
        spec.lower()
            .map_err(|e| format!("variant {index} of spec {} does not lower: {e}", base.name))?;
        payloads.push(serde_json::to_string(&spec).map_err(|e| e.to_string())?);
        specs.push(spec);
    }
    Ok(LoadPlan { specs, payloads })
}

/// What a load run observed, serialized as the `--summary` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Client threads run.
    pub clients: usize,
    /// Total submissions attempted.
    pub submissions: u64,
    /// Submissions answered as newly admitted runs.
    pub admitted: u64,
    /// Submissions answered with an existing run id.
    pub deduplicated: u64,
    /// Submissions that hit the queue bound (each was retried until
    /// admitted or the retry budget ran out).
    pub queue_full_rejections: u64,
    /// Transport-level retries (connection refused/reset — e.g. the
    /// daemon restart window of the kill smoke).
    pub transport_retries: u64,
    /// Outcome lines received over `/stream` across all threads.
    pub outcomes_streamed: u64,
    /// Distinct runs the plan mapped to.
    pub distinct_runs: usize,
    /// Distinct runs that reached `complete`.
    pub runs_completed: usize,
    /// Whether every result fetch of a given run returned identical bytes
    /// across all client threads.
    pub byte_identical: bool,
    /// Errors that exhausted their retry budget.
    pub errors: Vec<String>,
}

impl LoadReport {
    /// Whether the load run met its contract: all runs completed, every
    /// reader saw identical bytes, and nothing failed terminally.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.byte_identical && self.runs_completed == self.distinct_runs
    }
}

struct LoadShared {
    results: Mutex<HashMap<String, Vec<u8>>>,
    report: Mutex<LoadReport>,
}

/// Executes a plan against a daemon. Returns the report plus the merged
/// result bytes of every completed run (variant-ordered), so callers can
/// write them out or compare against an offline execution.
pub fn execute(
    addr: SocketAddr,
    plan: &LoadPlan,
    config: &LoadConfig,
    timeout: Duration,
) -> (LoadReport, Vec<(String, Vec<u8>)>) {
    let shared = Arc::new(LoadShared {
        results: Mutex::new(HashMap::new()),
        report: Mutex::new(LoadReport {
            clients: config.clients.max(1),
            submissions: 0,
            admitted: 0,
            deduplicated: 0,
            queue_full_rejections: 0,
            transport_retries: 0,
            outcomes_streamed: 0,
            distinct_runs: plan.specs.len(),
            runs_completed: 0,
            byte_identical: true,
            errors: Vec::new(),
        }),
    });

    let mut handles = Vec::new();
    for thread_no in 0..config.clients.max(1) {
        let shared = shared.clone();
        let plan = plan.clone();
        let config = config.clone();
        handles.push(thread::spawn(move || {
            client_thread(addr, thread_no, &plan, &config, timeout, &shared)
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }

    let mut report = shared.report.lock_unpoisoned().clone();
    let results = shared.results.lock_unpoisoned();
    report.runs_completed = results.len();
    // Variant-ordered (run id per variant in plan order) result bytes.
    let mut ordered = Vec::new();
    for spec in &plan.specs {
        let id = crate::server::run_id(spec, config.quick);
        if let Some(bytes) = results.get(&id) {
            ordered.push((id, bytes.clone()));
        }
    }
    (report, ordered)
}

/// One client thread: submits its share of the plan, streams outcomes of
/// its first run, waits for every submitted run to finish and byte-checks
/// the merged results.
fn client_thread(
    addr: SocketAddr,
    thread_no: usize,
    plan: &LoadPlan,
    config: &LoadConfig,
    timeout: Duration,
    shared: &LoadShared,
) {
    let client = Client::new(addr).with_timeout(timeout.min(Duration::from_secs(30)));
    let name = format!("load-{thread_no}");
    let deadline = std::time::Instant::now() + timeout;
    let mut my_runs: Vec<String> = Vec::new();

    for submission in 0..config.per_client {
        let variant = (thread_no + submission) % plan.payloads.len();
        let payload = &plan.payloads[variant];
        bump(shared, |r| r.submissions += 1);
        let mut attempts = 0u32;
        loop {
            match client.submit(payload, &name, config.quick, config.shard_size) {
                Ok((created, status)) => {
                    if created {
                        bump(shared, |r| r.admitted += 1);
                    } else {
                        bump(shared, |r| r.deduplicated += 1);
                    }
                    if !my_runs.contains(&status.id) {
                        my_runs.push(status.id);
                    }
                    break;
                }
                Err(ClientError::Rejected { kind, .. }) if kind == "QueueFull" => {
                    // Backpressure, not failure: wait out the bound.
                    bump(shared, |r| r.queue_full_rejections += 1);
                    if std::time::Instant::now() > deadline {
                        fail(
                            shared,
                            format!("{name}: queue stayed full past the deadline"),
                        );
                        return;
                    }
                    thread::sleep(Duration::from_millis(100));
                }
                Err(ClientError::Transport(detail)) => {
                    // The daemon may be mid-restart (the kill smoke).
                    bump(shared, |r| r.transport_retries += 1);
                    attempts += 1;
                    if std::time::Instant::now() > deadline || attempts > 600 {
                        fail(
                            shared,
                            format!("{name}: transport retries exhausted: {detail}"),
                        );
                        return;
                    }
                    thread::sleep(Duration::from_millis(200));
                }
                Err(e) => {
                    fail(shared, format!("{name}: submission failed: {e}"));
                    return;
                }
            }
        }
    }

    // Stream the first run's outcomes while it executes (tolerating the
    // restart window: a dropped tail reconnects from its cursor).
    if let Some(first) = my_runs.first().cloned() {
        let cursor = 0usize;
        loop {
            match client.stream(&first, cursor, |_| {}) {
                Ok(count) => {
                    bump(shared, |r| r.outcomes_streamed += count as u64);
                    break;
                }
                Err(ClientError::Transport(_)) => {
                    if std::time::Instant::now() > deadline {
                        break;
                    }
                    thread::sleep(Duration::from_millis(200));
                }
                Err(_) => break,
            }
        }
    }

    // Wait for every submitted run to reach a terminal state, then fetch
    // and cross-check its bytes.
    for id in my_runs {
        loop {
            match client.status(&id) {
                Ok(status) => match status.state.as_str() {
                    "complete" => break,
                    "cancelled" | "failed" => {
                        fail(shared, format!("{name}: run {id} ended {}", status.state));
                        return;
                    }
                    _ => {
                        if std::time::Instant::now() > deadline {
                            fail(shared, format!("{name}: run {id} did not finish in time"));
                            return;
                        }
                        thread::sleep(Duration::from_millis(100));
                    }
                },
                Err(ClientError::Transport(_)) => {
                    bump(shared, |r| r.transport_retries += 1);
                    if std::time::Instant::now() > deadline {
                        fail(
                            shared,
                            format!("{name}: daemon unreachable waiting on {id}"),
                        );
                        return;
                    }
                    thread::sleep(Duration::from_millis(200));
                }
                Err(e) => {
                    fail(shared, format!("{name}: status of {id} failed: {e}"));
                    return;
                }
            }
        }
        match client.result(&id) {
            Ok(bytes) => {
                let mut results = shared.results.lock_unpoisoned();
                match results.get(&id) {
                    Some(existing) if existing != &bytes => {
                        drop(results);
                        bump(shared, |r| r.byte_identical = false);
                        fail(
                            shared,
                            format!("{name}: result bytes of {id} differ between readers"),
                        );
                    }
                    Some(_) => {}
                    None => {
                        results.insert(id.clone(), bytes);
                    }
                }
            }
            Err(e) => fail(shared, format!("{name}: result fetch of {id} failed: {e}")),
        }
    }
}

fn bump(shared: &LoadShared, update: impl FnOnce(&mut LoadReport)) {
    update(&mut shared.report.lock_unpoisoned());
}

fn fail(shared: &LoadShared, message: String) {
    shared.report.lock_unpoisoned().errors.push(message);
}

#[cfg(test)]
mod tests {
    use super::*;
    use experiments::spec::{PlatformAxisSpec, PlatformSpec};
    use experiments::{QosAxis, RmaVariant};
    use qosrm_types::QosSpec;
    use workload::{MixPopulation, SynthSpec};

    fn base_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "load-test".to_string(),
            platforms: vec![PlatformAxisSpec {
                label: "p4".to_string(),
                platform: PlatformSpec::Paper1 { num_cores: 4 },
                workloads: WorkloadSource::Synth(SynthSpec {
                    seed: 11,
                    count: 2,
                    num_cores: 4,
                    population: MixPopulation::Mixed,
                    name_prefix: "ld-".to_string(),
                }),
            }],
            qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
            variants: vec![RmaVariant::Paper1],
            options: None,
        }
    }

    #[test]
    fn plan_is_deterministic_for_a_seed() {
        let config = LoadConfig {
            distinct: 4,
            seed: 99,
            ..Default::default()
        };
        let a = plan(&base_spec(), &config).unwrap();
        let b = plan(&base_spec(), &config).unwrap();
        assert_eq!(a.payloads, b.payloads);
        // Variant 0 is the base spec verbatim.
        assert_eq!(a.specs[0], base_spec());
        // All variants are distinct specs (distinct run ids).
        let ids: Vec<String> = a
            .specs
            .iter()
            .map(|s| crate::server::run_id(s, true))
            .collect();
        let mut deduped = ids.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), ids.len());
    }

    #[test]
    fn different_seeds_give_different_variants() {
        let a = plan(
            &base_spec(),
            &LoadConfig {
                distinct: 3,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = plan(
            &base_spec(),
            &LoadConfig {
                distinct: 3,
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            a.payloads[0], b.payloads[0],
            "variant 0 is seed-independent"
        );
        assert_ne!(a.payloads[1], b.payloads[1]);
        assert_ne!(a.payloads[2], b.payloads[2]);
    }
}
