//! A blocking client for the daemon protocol, used by `qosrm_load`, the
//! protocol tests, and the serving benchmark.

use crate::http::{WireError, PROTO_VERSION, PROTO_VERSION_HEADER};
use crate::server::{RunStatus, StatsReport};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The daemon answered with a typed error (`kind` dispatchable:
    /// `QueueFull`, `InvalidSpec`, `PayloadTooLarge`, `RunNotFound`,
    /// `RunNotComplete`, ...).
    Rejected {
        /// HTTP status code.
        status: u16,
        /// Machine-readable error kind.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The connection could not be established or died mid-exchange (the
    /// daemon may have been killed; retrying is reasonable).
    Transport(String),
    /// The daemon answered with bytes the client could not interpret.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected {
                status,
                kind,
                message,
            } => write!(f, "rejected ({status} {kind}): {message}"),
            ClientError::Transport(detail) => write!(f, "transport error: {detail}"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

/// A parsed response.
#[derive(Debug, Clone)]
struct Response {
    status: u16,
    body: Vec<u8>,
}

/// Blocking daemon client. One TCP connection per call (the protocol is
/// one request per connection).
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// Creates a client for a daemon address.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(120),
        }
    }

    /// Overrides the per-call socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Submits a spec. Returns the run status plus whether this submission
    /// *created* the run (HTTP 202) or deduplicated to an existing one
    /// (HTTP 200).
    pub fn submit(
        &self,
        spec_json: &str,
        client_name: &str,
        quick: bool,
        shard_size: usize,
    ) -> Result<(bool, RunStatus), ClientError> {
        let path = format!("/runs?quick={quick}&shard_size={shard_size}");
        let response = self.request(
            "POST",
            &path,
            &[
                ("x-client", client_name),
                ("content-type", "application/json"),
            ],
            spec_json.as_bytes(),
        )?;
        let created = response.status == 202;
        let status = self.parse_json(&self.ok(response)?)?;
        Ok((created, status))
    }

    /// Fetches a run's status.
    pub fn status(&self, run_id: &str) -> Result<RunStatus, ClientError> {
        let response = self.request("GET", &format!("/runs/{run_id}"), &[], b"")?;
        self.parse_json(&self.ok(response)?)
    }

    /// Lists all runs.
    pub fn list(&self) -> Result<Vec<RunStatus>, ClientError> {
        let response = self.request("GET", "/runs", &[], b"")?;
        self.parse_json(&self.ok(response)?)
    }

    /// Cancels a run, returning its status after the cancel.
    pub fn cancel(&self, run_id: &str) -> Result<RunStatus, ClientError> {
        let response = self.request("POST", &format!("/runs/{run_id}/cancel"), &[], b"")?;
        self.parse_json(&self.ok(response)?)
    }

    /// Fetches the merged result bytes of a complete run — the exact bytes
    /// the offline `sweep merge --result` path writes.
    pub fn result(&self, run_id: &str) -> Result<Vec<u8>, ClientError> {
        let response = self.request("GET", &format!("/runs/{run_id}/result"), &[], b"")?;
        self.ok(response)
    }

    /// Fetches the `/stats` report.
    pub fn stats(&self) -> Result<StatsReport, ClientError> {
        let response = self.request("GET", "/stats", &[], b"")?;
        self.parse_json(&self.ok(response)?)
    }

    /// Streams outcome lines starting at `from`, feeding each complete
    /// JSONL line to `sink`, until the daemon closes the tail (the run
    /// reached a terminal state). Returns the number of lines received.
    pub fn stream(
        &self,
        run_id: &str,
        from: usize,
        mut sink: impl FnMut(&str),
    ) -> Result<usize, ClientError> {
        let path = format!("/runs/{run_id}/stream?from={from}");
        let mut stream = self.connect()?;
        self.write_request(&mut stream, "GET", &path, &[], b"")?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        let (status, body) = split_response(&raw)?;
        if status != 200 {
            return Err(self.rejection(status, &body));
        }
        let text = String::from_utf8_lossy(&body);
        let mut count = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            sink(line);
            count += 1;
        }
        Ok(count)
    }

    fn connect(&self) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        let _ = stream.set_read_timeout(Some(self.timeout));
        let _ = stream.set_write_timeout(Some(self.timeout));
        Ok(stream)
    }

    fn write_request(
        &self,
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<(), ClientError> {
        let mut head = format!("{method} {path} HTTP/1.0\r\n");
        // Every request declares the protocol revision it speaks, so a
        // mixed-version client/daemon pair fails fast with a typed
        // `ProtocolMismatch` instead of misparsing each other.
        head.push_str(&format!("{PROTO_VERSION_HEADER}: {PROTO_VERSION}\r\n"));
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush())
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        // Half-close: the request is complete, so a server that rejects it
        // without reading the body sees EOF instead of blocking on a drain.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        Ok(())
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<Response, ClientError> {
        let mut stream = self.connect()?;
        self.write_request(&mut stream, method, path, headers, body)?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        let (status, body) = split_response(&raw)?;
        Ok(Response { status, body })
    }

    /// Maps a non-2xx response to [`ClientError::Rejected`].
    fn ok(&self, response: Response) -> Result<Vec<u8>, ClientError> {
        if (200..300).contains(&response.status) {
            Ok(response.body)
        } else {
            Err(self.rejection(response.status, &response.body))
        }
    }

    fn rejection(&self, status: u16, body: &[u8]) -> ClientError {
        let text = String::from_utf8_lossy(body);
        match serde_json::from_str::<WireError>(&text) {
            Ok(wire) => ClientError::Rejected {
                status,
                kind: wire.error.kind,
                message: wire.error.message,
            },
            Err(_) => ClientError::Rejected {
                status,
                kind: "Unknown".to_string(),
                message: text.into_owned(),
            },
        }
    }

    fn parse_json<T: serde::Deserialize>(&self, body: &[u8]) -> Result<T, ClientError> {
        let text = String::from_utf8_lossy(body);
        serde_json::from_str(&text).map_err(|e| {
            ClientError::Protocol(format!("unparsable response body: {e} in {text:.120}"))
        })
    }
}

/// Splits raw response bytes into (status, body).
fn split_response(raw: &[u8]) -> Result<(u16, Vec<u8>), ClientError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol("response has no head/body separator".to_string()))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}
