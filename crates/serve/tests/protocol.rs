//! Protocol-level integration coverage of the daemon: typed rejections
//! (torn, oversized, invalid-spec, queue-full), dedup, cancellation, and
//! the byte-identity of daemon results with the offline sweep path.

use experiments::spec::{PlatformAxisSpec, PlatformSpec, WorkloadSource};
use experiments::{ExperimentContext, QosAxis, RmaVariant, ScenarioSpec, SweepOptions};
use qosrm_serve::{Client, ClientError, ServeConfig, Server};
use qosrm_types::QosSpec;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use workload::{MixPopulation, SynthSpec};

fn tiny_spec(name: &str, seed: u64, count: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "p4".to_string(),
            platform: PlatformSpec::Paper1 { num_cores: 4 },
            workloads: WorkloadSource::Synth(SynthSpec {
                seed,
                count,
                num_cores: 4,
                population: MixPopulation::Mixed,
                name_prefix: "pt-".to_string(),
            }),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1],
        options: Some(rma_sim::SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        }),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qosrm_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start(tag: &str, config: ServeConfig) -> (Server, Client, PathBuf) {
    let dir = temp_dir(tag);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: dir.clone(),
        ..config
    };
    let server = Server::start(config).expect("daemon starts");
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(30));
    (server, client, dir)
}

fn wait_terminal(client: &Client, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.status(id).expect("status");
        if matches!(status.state.as_str(), "complete" | "cancelled" | "failed") {
            return status.state;
        }
        assert!(Instant::now() < deadline, "run {id} did not settle");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn torn_and_malformed_requests_get_typed_errors_and_leave_the_daemon_up() {
    let (mut server, client, dir) = start("torn", ServeConfig::default());

    // A torn request: head promised a body that never arrives.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"POST /runs HTTP/1.0\r\nContent-Length: 50\r\n\r\n{\"trunc")
        .unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.contains("400"), "torn request: {response}");
    assert!(
        response.contains("MalformedRequest"),
        "torn request: {response}"
    );

    // Not HTTP at all.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"garbage\r\n\r\n").unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.contains("MalformedRequest"), "garbage: {response}");

    // The daemon still serves normally afterwards.
    let stats = client.stats().expect("daemon survived the torn requests");
    assert_eq!(stats.schema, qosrm_serve::STATS_SCHEMA);

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_payload_is_rejected_as_payload_too_large() {
    let (mut server, _client, dir) = start(
        "oversize",
        ServeConfig {
            max_payload_bytes: 256,
            ..Default::default()
        },
    );
    let client = Client::new(server.addr());
    let huge = format!("{{\"pad\":\"{}\"}}", "x".repeat(1024));
    let err = client.submit(&huge, "t", true, 4).unwrap_err();
    match err {
        ClientError::Rejected { status, kind, .. } => {
            assert_eq!(status, 413);
            assert_eq!(kind, "PayloadTooLarge");
        }
        other => panic!("expected PayloadTooLarge, got {other}"),
    }
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_specs_are_rejected_with_invalid_spec() {
    let (mut server, client, dir) = start("badspec", ServeConfig::default());

    // Unparsable JSON.
    let err = client.submit("{not json", "t", true, 4).unwrap_err();
    match err {
        ClientError::Rejected { status, kind, .. } => {
            assert_eq!(status, 400);
            assert_eq!(kind, "InvalidSpec");
        }
        other => panic!("expected InvalidSpec, got {other}"),
    }

    // Parses but does not lower: synth core count mismatches the platform.
    let mut bad = tiny_spec("bad-lower", 1, 2);
    if let WorkloadSource::Synth(synth) = &mut bad.platforms[0].workloads {
        synth.num_cores = 7;
    }
    let payload = serde_json::to_string(&bad).unwrap();
    let err = client.submit(&payload, "t", true, 4).unwrap_err();
    match err {
        ClientError::Rejected { kind, message, .. } => {
            assert_eq!(kind, "InvalidSpec");
            assert!(message.contains("lower"), "message: {message}");
        }
        other => panic!("expected InvalidSpec, got {other}"),
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.counters.rejected_invalid_spec, 2);
    assert_eq!(stats.counters.admitted, 0);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_runs_and_endpoints_are_typed_404s() {
    let (mut server, client, dir) = start("notfound", ServeConfig::default());
    match client.status("r-nope").unwrap_err() {
        ClientError::Rejected { status, kind, .. } => {
            assert_eq!(status, 404);
            assert_eq!(kind, "RunNotFound");
        }
        other => panic!("expected RunNotFound, got {other}"),
    }
    match client.result("r-nope").unwrap_err() {
        ClientError::Rejected { kind, .. } => assert_eq!(kind, "RunNotFound"),
        other => panic!("expected RunNotFound, got {other}"),
    }
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_bound_rejects_with_queue_full_and_fairness_is_per_client() {
    // One worker, a queue bound of 1, and slow shards: the worker is busy
    // with the first run while the queue holds exactly one more.
    let (mut server, client, dir) = start(
        "queuefull",
        ServeConfig {
            workers: 1,
            max_queue: 1,
            shard_delay_ms: 300,
            default_shard_size: 1,
            ..Default::default()
        },
    );
    let a = serde_json::to_string(&tiny_spec("qf-a", 1, 2)).unwrap();
    let b = serde_json::to_string(&tiny_spec("qf-b", 2, 2)).unwrap();
    let c = serde_json::to_string(&tiny_spec("qf-c", 3, 2)).unwrap();

    let (created, first) = client.submit(&a, "alice", true, 1).unwrap();
    assert!(created);
    // Wait until the worker claims the first run so the queue is empty.
    let deadline = Instant::now() + Duration::from_secs(60);
    while client.status(&first.id).unwrap().state == "queued" {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(20));
    }
    let (created, _second) = client.submit(&b, "alice", true, 1).unwrap();
    assert!(created, "queue has room for exactly one");
    let err = client.submit(&c, "bob", true, 1).unwrap_err();
    match err {
        ClientError::Rejected { status, kind, .. } => {
            assert_eq!(status, 429);
            assert_eq!(kind, "QueueFull");
        }
        other => panic!("expected QueueFull, got {other}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.counters.rejected_queue_full, 1);
    assert_eq!(stats.queue_max, 1);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn identical_submissions_deduplicate_to_one_run() {
    // One slowed worker: the quick run keeps it busy, so the full-mode run
    // below stays queued until we cancel it (a full database build has no
    // place in a unit test).
    let (mut server, client, dir) = start(
        "dedup",
        ServeConfig {
            workers: 1,
            shard_delay_ms: 500,
            default_shard_size: 1,
            ..Default::default()
        },
    );
    let payload = serde_json::to_string(&tiny_spec("dedup", 5, 2)).unwrap();
    let (created_a, a) = client.submit(&payload, "alice", true, 1).unwrap();
    let (created_b, b) = client.submit(&payload, "bob", true, 1).unwrap();
    assert!(created_a);
    assert!(!created_b, "second submission must deduplicate");
    assert_eq!(a.id, b.id);
    // Same spec, different database mode: a different run.
    let (created_full, full) = client.submit(&payload, "carol", false, 1).unwrap();
    assert!(created_full);
    assert_ne!(full.id, a.id);
    client.cancel(&full.id).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.counters.deduplicated, 1);
    assert_eq!(stats.counters.admitted, 2);
    wait_terminal(&client, &a.id);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancel_mid_run_settles_as_cancelled_and_stream_terminates() {
    // Slow shards (one scenario each, 300 ms apart) make the cancel land
    // deterministically while the run is mid-execution.
    let (mut server, client, dir) = start(
        "cancel",
        ServeConfig {
            workers: 1,
            shard_delay_ms: 300,
            default_shard_size: 1,
            ..Default::default()
        },
    );
    let payload = serde_json::to_string(&tiny_spec("cancel", 9, 4)).unwrap();
    let (_, status) = client.submit(&payload, "t", true, 1).unwrap();
    let id = status.id;

    // Wait for the run to be mid-execution (at least one shard done).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(&id).unwrap();
        if status.state == "running" && status.completed_scenarios >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "run never got going");
        std::thread::sleep(Duration::from_millis(20));
    }
    let cancelled = client.cancel(&id).unwrap();
    assert_eq!(cancelled.state, "cancelled");

    // The stream tail closes instead of hanging.
    let lines = client.stream(&id, 0, |_| {}).unwrap();
    assert!(lines < 4, "cancel must stop the run before completion");

    // The state is terminal and sticks (the worker must not overwrite it
    // with complete).
    std::thread::sleep(Duration::from_millis(700));
    assert_eq!(client.status(&id).unwrap().state, "cancelled");

    // Cancelling a terminal run is a no-op.
    assert_eq!(client.cancel(&id).unwrap().state, "cancelled");
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_result_is_byte_identical_to_the_offline_sweep() {
    let (mut server, client, dir) = start("bytes", ServeConfig::default());
    let spec = tiny_spec("bytes", 21, 3);
    let payload = serde_json::to_string(&spec).unwrap();
    let (_, status) = client.submit(&payload, "t", true, 2).unwrap();
    assert_eq!(wait_terminal(&client, &status.id), "complete");
    let served = client.result(&status.id).unwrap();

    // The offline path: in-memory sweep of the same spec, serialized the
    // way `sweep merge --result` writes it.
    let ctx = ExperimentContext::new(true);
    let offline =
        experiments::sweep::run_with(&spec.lower().unwrap(), &ctx, &SweepOptions::default());
    let offline_bytes = serde_json::to_string(&offline).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&served),
        offline_bytes,
        "daemon result must byte-match the offline sweep"
    );

    // Streamed outcome lines cover every scenario exactly once.
    let mut lines = Vec::new();
    client
        .stream(&status.id, 0, |line| lines.push(line.to_string()))
        .unwrap();
    assert_eq!(lines.len(), 3);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_panicking_worker_fails_its_run_and_leaves_the_daemon_serving() {
    let (mut server, client, dir) = start("panic", ServeConfig::default());

    // An impossible event budget passes admission (the spec is perfectly
    // valid) but makes the sweep engine panic deep inside the worker's
    // shard evaluation — the exact shape of bug that used to poison the
    // shared daemon state and cascade into every later request.
    let mut poisoned = tiny_spec("panic-poison", 31, 2);
    poisoned.options = Some(rma_sim::SimulationOptions {
        max_events: 1,
        provide_mlp_profiles: false,
        ..Default::default()
    });
    let payload = serde_json::to_string(&poisoned).unwrap();
    let (_, status) = client.submit(&payload, "t", true, 2).unwrap();
    assert_eq!(
        wait_terminal(&client, &status.id),
        "failed",
        "the panicked evaluation must settle as a failed run, not hang or crash"
    );
    let failed = client.status(&status.id).expect("status after the panic");
    assert!(
        failed.error.is_some(),
        "the failed run must carry an error message"
    );

    // The daemon is still fully serving: stats respond and a healthy run
    // submitted afterwards completes normally.
    let stats = client.stats().expect("stats after a panicked worker");
    assert_eq!(stats.schema, qosrm_serve::STATS_SCHEMA);
    let healthy = tiny_spec("panic-healthy", 32, 2);
    let payload = serde_json::to_string(&healthy).unwrap();
    let (_, status) = client.submit(&payload, "t", true, 2).unwrap();
    assert_eq!(wait_terminal(&client, &status.id), "complete");
    assert!(!client.result(&status.id).unwrap().is_empty());

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_recovers_runs_and_dedups_resubmissions() {
    let dir = temp_dir("restart");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: dir.clone(),
        workers: 1,
        shard_delay_ms: 200,
        default_shard_size: 1,
        ..Default::default()
    };
    let mut server = Server::start(config.clone()).unwrap();
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(30));
    let spec = tiny_spec("restart", 33, 3);
    let payload = serde_json::to_string(&spec).unwrap();
    let (_, status) = client.submit(&payload, "t", true, 1).unwrap();
    let id = status.id.clone();

    // Let it make partial progress, then stop the daemon (stop() finishes
    // the in-flight shard and re-queues — the durable analogue of a kill
    // with at least one shard on disk).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(&id).unwrap();
        if status.completed_scenarios >= 1 {
            break;
        }
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(20));
    }
    server.stop();

    // A fresh daemon on the same data dir recovers and finishes the run.
    let mut server = Server::start(ServeConfig {
        shard_delay_ms: 0,
        ..config
    })
    .unwrap();
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(30));
    // A resubmission of the same spec dedups against the recovered run.
    let (created, again) = client.submit(&payload, "t", true, 1).unwrap();
    assert!(!created, "recovered run must deduplicate the resubmission");
    assert_eq!(again.id, id);
    assert_eq!(wait_terminal(&client, &id), "complete");
    let served = client.result(&id).unwrap();

    let ctx = ExperimentContext::new(true);
    let offline =
        experiments::sweep::run_with(&spec.lower().unwrap(), &ctx, &SweepOptions::default());
    assert_eq!(
        String::from_utf8_lossy(&served),
        serde_json::to_string(&offline).unwrap(),
        "post-restart result must byte-match the offline sweep"
    );
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn external_workers_drain_the_daemon_lease_queue_alongside_the_pool() {
    // One slow in-process worker (400 ms pause after each one-scenario
    // shard) plus an external wire worker pinned to the run: the external
    // worker must get shards of its own, and the merged result must stay
    // byte-identical to the offline sweep regardless of who ran what.
    let (mut server, client, dir) = start(
        "extworker",
        ServeConfig {
            workers: 1,
            shard_delay_ms: 400,
            default_shard_size: 1,
            ..Default::default()
        },
    );
    let spec = tiny_spec("extworker", 51, 6);
    let payload = serde_json::to_string(&spec).unwrap();
    let (_, status) = client.submit(&payload, "t", true, 1).unwrap();
    let id = status.id.clone();

    let addr = server.addr().to_string();
    let pinned = id.clone();
    let handle = std::thread::spawn(move || {
        experiments::dist::run_worker(
            &addr,
            &experiments::dist::WorkerConfig {
                worker: "ext-1".to_string(),
                run: pinned,
                poll_ms: 25,
                ..Default::default()
            },
        )
    });
    assert_eq!(wait_terminal(&client, &id), "complete");
    let report = handle.join().unwrap().expect("external worker run");
    assert!(
        report.shards_completed >= 1,
        "the external worker must win at least one shard against a worker \
         that sleeps 400 ms per shard: {report:?}"
    );

    let served = client.result(&id).unwrap();
    let ctx = ExperimentContext::new(true);
    let offline =
        experiments::sweep::run_with(&spec.lower().unwrap(), &ctx, &SweepOptions::default());
    assert_eq!(
        String::from_utf8_lossy(&served),
        serde_json::to_string(&offline).unwrap(),
        "mixed in-process/external execution must byte-match the offline sweep"
    );

    // /stats surfaces the lease telemetry: all six shards completed, the
    // external worker credited by name.
    let stats = client.stats().unwrap();
    assert_eq!(stats.leases.completed, 6);
    assert!(stats.leases.granted >= 6);
    assert_eq!(
        stats.leases.per_worker.get("ext-1"),
        Some(&report.shards_completed)
    );
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_generator_sustains_concurrent_clients_with_byte_identical_results() {
    let (mut server, client, dir) = start(
        "load",
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    );
    let base = tiny_spec("loadgen", 41, 2);
    let config = qosrm_serve::LoadConfig {
        clients: 16,
        per_client: 3,
        distinct: 3,
        seed: 77,
        quick: true,
        shard_size: 2,
    };
    let plan = qosrm_serve::plan(&base, &config).unwrap();
    let (report, results) =
        qosrm_serve::execute(server.addr(), &plan, &config, Duration::from_secs(180));
    assert!(report.passed(), "load run failed: {:?}", report.errors);
    assert_eq!(report.submissions, 48);
    assert_eq!(report.admitted as usize, 3, "3 distinct variants, 3 runs");
    assert_eq!(report.deduplicated, 45);
    assert_eq!(report.queue_full_rejections, 0);
    assert_eq!(results.len(), 3);

    let stats = client.stats().unwrap();
    assert_eq!(stats.counters.admitted, 3);
    assert_eq!(stats.counters.deduplicated, 45);
    assert_eq!(stats.runs.complete, 3);

    // All evaluation ran in-process, so /stats surfaces the daemon's
    // measured RMA work — and since daemon sweeps enable the incremental
    // delta path, the delta counters tick whenever a core's observation
    // digest recurs across intervals.
    let rma = stats
        .rma
        .iter()
        .find(|r| r.mode == "quick")
        .expect("quick-mode RMA telemetry");
    assert!(rma.counters.invocations > 0, "no RMA work recorded");
    assert!(
        rma.counters.delta_invocations > 0,
        "daemon sweeps must take the incremental delta path: {:?}",
        rma.counters
    );
    assert!(
        rma.counters.chunked_conv_lanes > 0,
        "chunked convolution kernel never ran: {:?}",
        rma.counters
    );
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
