//! Scenario-sweep engine: evaluate a whole scenario family declaratively.
//!
//! Every experiment in the paper is "run these mixes on this platform under
//! these QoS targets with these managers, against the baseline". The sweep
//! engine turns that into data: this example declares a `ScenarioGrid` with
//! three QoS points × two manager variants over four Paper I workloads,
//! runs it (parallel, with the shared energy-curve memoization cache) and
//! prints the result table plus the cache statistics. Adding a new
//! scenario study is just another axis entry — no new loops.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use experiments::sweep::{self, PlatformAxis, QosAxis, RmaVariant, ScenarioGrid};
use experiments::ExperimentContext;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::SimulationOptions;
use workload::paper1_workloads;

fn main() {
    // Quick mode keeps the database characterization coarse so the example
    // finishes in seconds; the grid itself is what a full study would use.
    let ctx = ExperimentContext::new(true);

    let grid = ScenarioGrid {
        platforms: vec![PlatformAxis::new(
            "paper1-4c",
            PlatformConfig::paper1(4),
            ctx.limit_workloads(paper1_workloads(4)),
        )],
        qos: vec![
            QosAxis::uniform("strict", QosSpec::STRICT),
            QosAxis::uniform("relaxed 20%", QosSpec::relaxed_by(0.2)),
            QosAxis::uniform("relaxed 40%", QosSpec::relaxed_by(0.4)),
        ],
        variants: vec![RmaVariant::Paper1, RmaVariant::PartitioningOnly],
        options: SimulationOptions {
            provide_mlp_profiles: false, // Paper I platform: plain ATD only
            ..Default::default()
        },
    };

    println!(
        "Sweeping {} scenarios ({} mixes x {} QoS points x {} variants)...\n",
        grid.len(),
        grid.platforms.iter().map(|a| a.mixes.len()).sum::<usize>(),
        grid.qos.len(),
        grid.variants.len()
    );
    let result = sweep::run(&grid, &ctx);

    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>12}",
        "workload", "QoS", "RM2 sav %", "RM1 sav %", "violations"
    );
    let axis = &grid.platforms[0];
    for mix in &axis.mixes {
        for qos_axis in &grid.qos {
            let rm2 = result.expect_comparison(&axis.label, &mix.name, &qos_axis.label, "RM2");
            let rm1 = result.expect_comparison(&axis.label, &mix.name, &qos_axis.label, "RM1");
            println!(
                "{:<10} {:>14} {:>12.2} {:>12.2} {:>12}",
                mix.name,
                qos_axis.label,
                rm2.energy_savings * 100.0,
                rm1.energy_savings * 100.0,
                rm2.num_violations()
            );
        }
    }

    let cache = ctx.curve_cache();
    println!(
        "\nenergy-curve cache: {} entries, {} hits / {} misses ({:.1}% hit rate)",
        cache.len(),
        cache.hits(),
        cache.misses(),
        cache.hit_rate() * 100.0
    );
    println!(
        "(the sweep computed each distinct (config, QoS, observation) curve once \
         and reused it everywhere else)"
    );
}
