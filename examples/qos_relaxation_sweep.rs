//! Energy/performance trade-off curve: sweep the allowed slowdown.
//!
//! Reproduces the shape of the paper's QoS-relaxation study on a single
//! workload: as users tolerate longer execution times, the Combined RMA can
//! lower frequencies further and the savings grow, with diminishing returns
//! once everything already runs near the lowest voltage.
//!
//! Run with:
//! ```text
//! cargo run --release --example qos_relaxation_sweep
//! ```

use qosrm_core::{CoordinatedRma, ModelKind};
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{compare, CophaseSimulator, SimulationOptions};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use workload::WorkloadMix;

fn main() {
    let platform = PlatformConfig::paper1(4);
    let mix = WorkloadMix::new(
        "relaxation-sweep",
        vec!["mcf_like", "soplex_like", "milc_like", "hmmer_like"],
    );
    let db = build_database_for_mixes(
        &platform,
        std::slice::from_ref(&mix),
        &BuildOptions::quick_for_tests(&platform),
    );
    let options = SimulationOptions {
        provide_mlp_profiles: false,
        provide_perfect_tables: true, // the paper runs this study with perfect models
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();

    println!("workload: {:?}\n", mix.benchmarks);
    println!("allowed slowdown | energy savings | worst app slowdown");
    println!("-----------------+----------------+-------------------");
    for relaxation in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8] {
        let qos = vec![QosSpec::relaxed_by(relaxation); 4];
        let mut manager =
            CoordinatedRma::with_model(&platform, qos.clone(), ModelKind::Perfect, false)
                .with_name("CombinedRMA-Perfect");
        let run = simulator.run(&mut manager).unwrap();
        let cmp = compare(&baseline, &run, &qos);
        let worst = cmp
            .per_app_slowdown
            .iter()
            .copied()
            .fold(f64::MIN, f64::max);
        let bar = "#".repeat((cmp.energy_savings * 100.0).max(0.0).round() as usize);
        println!(
            "      {:>4.0} %     |     {:5.1} %    |      {:+5.1} %   {bar}",
            relaxation * 100.0,
            cmp.energy_savings * 100.0,
            worst * 100.0,
        );
    }
    println!("\n(savings should grow with the allowed slowdown and saturate near the");
    println!(" lowest voltage-frequency level, mirroring the paper's relaxation figure)");
}
