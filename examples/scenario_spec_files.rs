//! Authoring scenario spec files in Rust.
//!
//! A [`experiments::ScenarioSpec`] is plain data: build it with the types
//! of `experiments::spec`, save it as JSON, and feed it to the streaming
//! CLI (`qosrm-experiments sweep run --spec FILE --out DIR`). This example
//! regenerates the two spec files committed under `examples/specs/`:
//!
//! * `synth_smoke.json` — a small synthetic sweep the CI smoke step runs,
//!   kills partway, resumes and merges;
//! * `synth_sweep.json` — a 200-mix sweep drawing from three populations
//!   (streaming-heavy, cache-sensitive, mixed) on 4-, 8- and 16-core
//!   platforms: far beyond what the paper's hand-built mix tables cover,
//!   and the scale the streaming executor exists for.
//!
//! (The third committed spec, `e10_quick.json`, is owned by the E10
//! experiment module: regenerate it with `QOSRM_UPDATE_SPECS=1 cargo test
//! -p experiments --lib committed_quick_spec_is_in_sync`.)
//!
//! Run with `cargo run --example scenario_spec_files [OUT_DIR]`.

use experiments::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use experiments::sweep::{QosAxis, RmaVariant};
use qosrm_types::QosSpec;
use workload::{MixPopulation, SynthSpec};

fn synth_axis(
    num_cores: usize,
    count: usize,
    population: MixPopulation,
    tag: &str,
) -> PlatformAxisSpec {
    PlatformAxisSpec {
        label: format!("{tag}-{num_cores}c"),
        platform: PlatformSpec::Paper2 { num_cores },
        workloads: WorkloadSource::Synth(SynthSpec {
            seed: 2024,
            count,
            num_cores,
            population,
            name_prefix: format!("{tag}{num_cores}-"),
        }),
    }
}

/// The CI smoke spec: 12 mixes × 1 QoS point × 2 variants = 24 scenarios.
fn smoke_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "synth-smoke".to_string(),
        platforms: vec![synth_axis(4, 12, MixPopulation::Mixed, "smoke")],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1, RmaVariant::Paper2],
        options: None,
    }
}

/// The 200-mix scenario-space sweep: three populations over three platform
/// widths, 200 scenarios with the single RM3 variant.
fn sweep_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "synth-200".to_string(),
        platforms: vec![
            synth_axis(4, 80, MixPopulation::StreamingHeavy, "streaming"),
            synth_axis(8, 80, MixPopulation::CacheSensitive, "cachesens"),
            synth_axis(16, 40, MixPopulation::Mixed, "mixed"),
        ],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper2],
        options: None,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/specs".to_string());
    let out = std::path::Path::new(&out);
    for (file, spec) in [
        ("synth_smoke.json", smoke_spec()),
        ("synth_sweep.json", sweep_spec()),
    ] {
        let path = out.join(file);
        spec.lower().expect("example specs must lower");
        spec.save(&path).expect("spec file saves");
        println!(
            "wrote {} ({} scenarios)",
            path.display(),
            spec.lower().unwrap().len()
        );
    }
}
