//! Server-consolidation scenario on the Paper II platform.
//!
//! Eight applications of very different character are co-located on an
//! 8-core server with re-configurable cores. The example compares the
//! Paper I manager (RM2: DVFS + cache partitioning) with the Paper II manager
//! (RM3: core size + DVFS + cache partitioning) and prints where the extra
//! savings come from (which cores get down-sized or up-sized).
//!
//! Run with:
//! ```text
//! cargo run --release --example datacenter_colocation
//! ```

use qosrm_core::CoordinatedRma;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{compare, CophaseSimulator, SimulationOptions};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use workload::WorkloadMix;

fn main() {
    let platform = PlatformConfig::paper2(8);
    let mix = WorkloadMix::new(
        "colocation",
        vec![
            "mcf_like",        // pointer chasing, cache hungry
            "libquantum_like", // streaming, high MLP potential
            "soplex_like",     // cache sensitive, bursty misses
            "gamess_like",     // compute bound
            "lbm_like",        // streaming
            "omnetpp_like",    // cache sensitive, dependent misses
            "povray_like",     // compute bound
            "gcc_like",        // mixed phases
        ],
    );
    let db = build_database_for_mixes(
        &platform,
        std::slice::from_ref(&mix),
        &BuildOptions::quick_for_tests(&platform),
    );
    let qos = vec![QosSpec::STRICT; 8];

    let simulator =
        CophaseSimulator::new(&db, &mix, SimulationOptions::default()).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();

    let mut rm2 = CoordinatedRma::paper1(&platform, qos.clone());
    let rm2_run = simulator.run(&mut rm2).unwrap();
    let rm2_cmp = compare(&baseline, &rm2_run, &qos);

    let mut rm3 = CoordinatedRma::paper2(&platform, qos.clone());
    let rm3_run = simulator.run(&mut rm3).unwrap();
    let rm3_cmp = compare(&baseline, &rm3_run, &qos);

    println!("8-core consolidation: {:?}\n", mix.benchmarks);
    println!(
        "RM2 (DVFS + partitioning):             savings {:5.1} %, {} QoS violations",
        rm2_cmp.energy_savings * 100.0,
        rm2_cmp.num_violations()
    );
    println!(
        "RM3 (core size + DVFS + partitioning): savings {:5.1} %, {} QoS violations",
        rm3_cmp.energy_savings * 100.0,
        rm3_cmp.num_violations()
    );

    // Where did RM3 spend its intervals? Summarize the settings it applied.
    println!("\nper-application interval settings chosen by RM3 (mode of the first round):");
    for app in 0..8usize {
        let mut size_counts = [0usize; 3];
        let mut ways_sum = 0usize;
        let mut freq_sum = 0usize;
        let mut n = 0usize;
        for record in rm3_run.intervals.iter().filter(|r| r.app.index() == app) {
            size_counts[record.setting.core_size.index()] += 1;
            ways_sum += record.setting.ways;
            freq_sum += record.setting.freq.index();
            n += 1;
        }
        if n == 0 {
            continue;
        }
        let dominant_size = size_counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| ["small", "medium", "large"][i])
            .unwrap_or("medium");
        println!(
            "  app{app} {:<18} mostly {:<6} core, avg {:.1} LLC ways, avg VF level {:.1}",
            rm3_run.per_app[app].benchmark,
            dominant_size,
            ways_sum as f64 / n as f64,
            freq_sum as f64 / n as f64,
        );
    }
    println!(
        "\nRM3 improves on RM2 by {:.1} percentage points on this mix",
        (rm3_cmp.energy_savings - rm2_cmp.energy_savings) * 100.0
    );
}
