//! Quickstart: manage one 4-core workload with the paper's Combined RMA.
//!
//! The example walks through the whole pipeline on a small configuration:
//!
//! 1. pick a 4-application workload from the synthetic suite,
//! 2. characterize its benchmarks into a simulation database,
//! 3. run the co-phase simulator under the baseline manager and under the
//!    Paper I Combined RMA (coordinated DVFS + LLC partitioning),
//! 4. report the energy savings and check the QoS constraints.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use qosrm_core::CoordinatedRma;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{compare, CophaseSimulator, SimulationOptions};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use workload::WorkloadMix;

fn main() {
    // 1. A 4-core multi-programmed workload: two cache-sensitive memory
    //    applications, one streaming application and one compute-bound
    //    application — the kind of mix where coordinated management pays off.
    let platform = PlatformConfig::paper1(4);
    let mix = WorkloadMix::new(
        "quickstart",
        vec!["mcf_like", "soplex_like", "libquantum_like", "gamess_like"],
    );
    println!("workload: {:?}", mix.benchmarks);

    // 2. Characterize the benchmarks (the expensive, embarrassingly parallel
    //    step the paper performs once with Sniper + McPAT).
    let db = build_database_for_mixes(
        &platform,
        std::slice::from_ref(&mix),
        &BuildOptions::quick_for_tests(&platform),
    );
    for name in db.benchmark_names() {
        let record = db.benchmark(name).unwrap();
        println!(
            "  {name:<20} phases={} category={}/{}",
            record.phases.len(),
            record.category.paper1.label(),
            record.category.paper2.label(),
        );
    }

    // 3. Simulate the full multi-programmed execution under the baseline and
    //    under the Combined RMA. Every application must finish at least as
    //    fast as it would with the baseline allocation (strict QoS).
    let qos = vec![QosSpec::STRICT; 4];
    let options = SimulationOptions {
        provide_mlp_profiles: false, // Paper I platform: plain ATD only
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();
    let mut manager = CoordinatedRma::paper1(&platform, qos.clone());
    let managed = simulator.run(&mut manager).unwrap();

    // 4. Compare.
    let cmp = compare(&baseline, &managed, &qos);
    println!("\nmanager: {}", managed.manager);
    println!(
        "system energy baseline: {:.3} J",
        baseline.system_energy_joules
    );
    println!(
        "system energy managed:  {:.3} J",
        managed.system_energy_joules
    );
    println!(
        "energy savings:         {:.1} %",
        cmp.energy_savings * 100.0
    );
    println!("RMA invocations:        {}", managed.rma_invocations);
    println!("setting changes:        {}", managed.setting_changes);
    for (i, app) in managed.per_app.iter().enumerate() {
        println!(
            "  app{i} {:<18} time {:.3}s -> {:.3}s (slowdown {:+.2} %)",
            app.benchmark,
            baseline.per_app[i].execution_seconds,
            app.execution_seconds,
            cmp.per_app_slowdown[i] * 100.0
        );
    }
    if cmp.violations.is_empty() {
        println!("QoS: all applications met their constraints");
    } else {
        for v in &cmp.violations {
            println!("QoS violation: {} by {:.1} %", v.app, v.magnitude() * 100.0);
        }
    }
}
