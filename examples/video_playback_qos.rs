//! A multimedia-style QoS scenario (the paper's motivating example).
//!
//! A video-decoding application only needs to sustain its target frame rate —
//! performance beyond that produces no additional value — while the
//! co-running batch applications tolerate a bounded slowdown. The example
//! pins a strict QoS target on the decoder-like application and a relaxed one
//! (40 % longer execution allowed) on the batch applications, then lets the
//! Combined RMA trade cache space and frequency between them.
//!
//! Run with:
//! ```text
//! cargo run --release --example video_playback_qos
//! ```

use qosrm_core::CoordinatedRma;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{compare, CophaseSimulator, SimulationOptions};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use workload::WorkloadMix;

fn main() {
    let platform = PlatformConfig::paper1(4);
    // Core 0 runs the frame decoder (compute-bound, ILP-heavy); the other
    // cores run memory-hungry batch analytics.
    let mix = WorkloadMix::new(
        "video-playback",
        vec!["h264ref_like", "mcf_like", "soplex_like", "lbm_like"],
    );
    let db = build_database_for_mixes(
        &platform,
        std::slice::from_ref(&mix),
        &BuildOptions::quick_for_tests(&platform),
    );

    let options = SimulationOptions {
        provide_mlp_profiles: false,
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();

    // Scenario A: every application strict (frame rate and batch all pinned
    // to baseline performance).
    let strict_qos = vec![QosSpec::STRICT; 4];
    let mut strict_manager = CoordinatedRma::paper1(&platform, strict_qos.clone());
    let strict_run = simulator.run(&mut strict_manager).unwrap();
    let strict_cmp = compare(&baseline, &strict_run, &strict_qos);

    // Scenario B: the decoder stays strict (its frame deadline is the QoS),
    // the batch applications accept up to 40 % longer completion times.
    let mixed_qos = vec![
        QosSpec::STRICT,
        QosSpec::relaxed_by(0.4),
        QosSpec::relaxed_by(0.4),
        QosSpec::relaxed_by(0.4),
    ];
    let mut mixed_manager = CoordinatedRma::paper1(&platform, mixed_qos.clone());
    let mixed_run = simulator.run(&mut mixed_manager).unwrap();
    let mixed_cmp = compare(&baseline, &mixed_run, &mixed_qos);

    println!("workload: {:?}\n", mix.benchmarks);
    println!(
        "scenario A (all strict):          savings {:.1} %",
        strict_cmp.energy_savings * 100.0
    );
    println!(
        "scenario B (batch relaxed by 40%): savings {:.1} %\n",
        mixed_cmp.energy_savings * 100.0
    );

    println!("per-application slowdown in scenario B:");
    for (i, app) in mixed_run.per_app.iter().enumerate() {
        let allowed = (mixed_qos[i].allowed_slowdown - 1.0) * 100.0;
        println!(
            "  app{i} {:<18} slowdown {:+6.2} % (allowed {:>4.0} %)",
            app.benchmark,
            mixed_cmp.per_app_slowdown[i] * 100.0,
            allowed
        );
    }
    // The decoder keeps its deadline even though everything around it slowed
    // down to save energy.
    let decoder_ok = mixed_cmp.violations.iter().all(|v| v.app.index() != 0);
    println!(
        "\ndecoder frame-rate constraint respected: {}",
        if decoder_ok { "yes" } else { "NO" }
    );
}
