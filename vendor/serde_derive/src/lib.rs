//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! Hand-rolled (no `syn`/`quote` available offline) for the shapes this
//! workspace actually derives on:
//!
//! * structs with named fields — serialized as objects, field order
//!   preserved;
//! * newtype structs (`struct CoreId(pub usize)`) — serialized
//!   transparently as the inner value, matching real serde;
//! * tuple structs with several fields — serialized as arrays;
//! * enums with unit variants only — serialized as the variant-name string.
//!
//! Generics, `#[serde(...)]` attributes and data-carrying enum variants are
//! not supported and fail loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What shape of type we are deriving for.
enum Shape {
    /// Named-field struct: field names in declaration order.
    Named(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Enum; each variant is unit, named-field or tuple-shaped.
    Enum(Vec<Variant>),
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

/// Payload shape of an enum variant.
enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) tokens.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic type `{name}` is not supported")
        }
        other => panic!("serde_derive: expected type body for `{name}`, got {other:?}"),
    };

    let shape = match (keyword.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::Enum(parse_variants(&name, body.stream())),
        other => panic!("serde_derive: unsupported type shape {other:?} for `{name}`"),
    };
    Parsed { name, shape }
}

/// Parses `attr* vis? ident : type ,` sequences, returning the field names.
/// Tracks angle-bracket depth so commas inside multi-parameter generics do
/// not split a field.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct body (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for tok in &tokens {
        saw_trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_trailing_comma = true;
            }
            _ => {}
        }
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(name: &str, stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let variant_name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant {
            name: variant_name,
            shape,
        });
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            other => panic!("serde_derive: unexpected token in enum `{name}`: {other:?}"),
        }
    }
    variants
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
                        ),
                        VariantShape::Named(fields) => {
                            let bindings = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => ::serde::Value::Object(vec![\
                                     (\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::Value::Object(vec![\
                                 (\"{vname}\".to_string(), ::serde::Serialize::to_value(x0))])"
                        ),
                        VariantShape::Tuple(n) => {
                            let bindings: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let entries: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                     (\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))])",
                                bindings.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")\
                             .ok_or_else(|| ::serde::Error::custom(\
                                 \"missing field `{f}` in {name}\"))?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", entries.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         Ok({name}({entries})),\n\
                     other => Err(::serde::Error::custom(format!(\
                         \"expected array of {n} for {name}, got {{other:?}}\"))),\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\")\
                                             .ok_or_else(|| ::serde::Error::custom(\
                                                 \"missing field `{f}` in {name}::{vname}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {} }}),",
                                entries.join(", ")
                            ))
                        }
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let entries: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match payload {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} => \
                                         Ok({name}::{vname}({})),\n\
                                     other => Err(::serde::Error::custom(format!(\
                                         \"expected array of {n} for {name}::{vname}, got {{other:?}}\"))),\n\
                                 }},",
                                entries.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::custom(format!(\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(::serde::Error::custom(format!(\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error::custom(format!(\
                         \"expected string or single-key object for {name}, got {{other:?}}\"))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}
