//! Offline, API-compatible subset of `rayon`.
//!
//! Implements the fork-join slice of the rayon API this workspace uses —
//! `par_iter()` / `into_par_iter()` with `enumerate` / `map` / `collect` /
//! `for_each` — on real OS threads (`std::thread::scope`), with dynamic
//! work distribution via an atomic index and order-preserving collection.
//!
//! The thread count is `std::thread::available_parallelism()`, capped by the
//! item count; on a single-CPU machine everything degrades gracefully to a
//! sequential loop with no thread overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel call will use for `len` items.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Evaluates `f(0..len)` across worker threads, returning results in index
/// order. Items are claimed dynamically (atomic counter) so uneven work
/// loads balance across threads.
fn execute<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed")
        })
        .collect()
}

/// Borrowing parallel iterator over a slice (`par_iter()`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pairs every item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    /// Maps every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        execute(self.items.len(), |i| f(&self.items[i]));
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects the mapped values, preserving item order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        execute(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }
}

/// Result of [`ParIter::enumerate`].
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    /// Maps every `(index, &item)` pair through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
    {
        ParEnumerateMap {
            items: self.items,
            f,
        }
    }
}

/// Result of [`ParEnumerate::map`].
pub struct ParEnumerateMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParEnumerateMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'a T)) -> R + Sync,
{
    /// Collects the mapped values, preserving item order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        execute(self.items.len(), |i| (self.f)((i, &self.items[i])))
            .into_iter()
            .collect()
    }
}

/// Owning parallel iterator (`into_par_iter()`).
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Maps every owned item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
        }
    }
}

/// Result of [`IntoParIter::map`].
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> IntoParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Collects the mapped values, preserving item order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let f = &self.f;
        execute(slots.len(), |i| {
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("each item is claimed once");
            f(item)
        })
        .into_iter()
        .collect()
    }
}

/// Traits the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    use super::{IntoParIter, ParIter};

    /// `par_iter()` on borrowable collections.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed item type.
        type Item: 'a;
        /// Returns a borrowing parallel iterator.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// `into_par_iter()` on owning collections.
    pub trait IntoParallelIterator {
        /// The owned item type.
        type Item;
        /// Returns an owning parallel iterator.
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_sees_correct_indices() {
        let input = vec!["a", "b", "c", "d"];
        let tagged: Vec<String> = input
            .par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}:{s}"))
            .collect();
        assert_eq!(tagged, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn into_par_iter_moves_items() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let input: Vec<u32> = (0..257).collect();
        input.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }
}
