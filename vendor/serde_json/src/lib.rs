//! Offline JSON serializer/parser over the workspace `serde` subset.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`] and [`from_str`] — rendering the [`serde::Value`]
//! tree to JSON text and parsing it back.
//!
//! Floats are printed with Rust's shortest round-trip formatting (`{:?}`),
//! so `f64` values survive a save/load cycle bit-exactly; non-finite floats
//! are written as `null` and read back as NaN.

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |o, v, d| {
            write_value(o, v, indent, d)
        }),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.consume_literal("null", Value::Null),
            Some(b't') => self.consume_literal("true", Value::Bool(true)),
            Some(b'f') => self.consume_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("malformed array at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("malformed object at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.25), ("b".into(), -0.5)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"[["a",1.25],["b",-0.5]]"#);
        let back: Vec<(String, f64)> = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(String, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_bits_survive() {
        let x = vec![0.1f64, 1e-300, 12345.6789, f64::MAX];
        let text = to_string(&x).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn integers_keep_precision() {
        let n = vec![u64::MAX, 0, 1 << 60];
        let text = to_string(&n).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<f64>("[1.0").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
