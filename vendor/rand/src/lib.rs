//! Offline, API-compatible subset of `rand`.
//!
//! Provides the [`Rng`] / [`SeedableRng`] traits and a seeded [`rngs::StdRng`]
//! built on xoshiro256** (seeded via SplitMix64). The workspace only needs
//! deterministic, seedable, statistically-reasonable streams — all synthetic
//! traces are regenerated from seeds, so no compatibility with upstream
//! `rand` output is required.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable random generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The xoshiro256** engine shared by [`rngs::StdRng`] and `rand_chacha`.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Expands a 64-bit seed into the full state with SplitMix64.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard seeded generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_seed_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
