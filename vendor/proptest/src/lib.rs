//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the property-test style the workspace uses:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn holds(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..50)) {
//!         prop_assert!(x < 100);
//!     }
//! }
//! ```
//!
//! Inputs are generated from a deterministic seeded generator (no persisted
//! failure files, no shrinking — a failing case reports its inputs via the
//! assertion message instead). Strategies cover integer/float ranges, tuples,
//! `prop_map` and `prop::collection::vec`.

use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn deterministic(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample empty range");
        self.next_u64() % n
    }
}

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection-size specifications accepted by [`prop::collection::vec`].
pub trait SizeRange {
    /// Samples a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Strategy combinators, mirroring the `prop` module paths of proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a sampled length.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is sampled from `len` (a `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.len.sample_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}` ({:?} != {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)` item
/// becomes an ordinary test that generates `cases` inputs and runs the body
/// on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Seed derived from the test name so distinct properties explore
            // distinct streams, deterministically across runs.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in ::std::stringify!($name).bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = $crate::TestRng::deterministic(seed);
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "property `{}` failed at case {}/{}: {}",
                        ::std::stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; prop_map and vec compose.
        #[test]
        fn generated_values_in_bounds(
            x in 5u64..25,
            v in prop::collection::vec(0.0f64..1.0, 1..10),
            (a, b) in (0usize..4, 10i64..20),
        ) {
            prop_assert!((5..25).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&f| (0.0..1.0).contains(&f)));
            prop_assert!(a < 4, "a was {a}");
            prop_assert_eq!(b / 10, 1);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::deterministic(9);
        let mut b = TestRng::deterministic(9);
        let s = (0u64..100, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    use super::{Strategy, TestRng};
}
