//! Offline, API-compatible subset of `serde`.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate provides the small slice of the `serde` surface the workspace
//! actually uses: the [`Serialize`] / [`Deserialize`] traits, derive macros
//! for plain structs and unit enums, and a self-describing [`Value`] tree
//! that `serde_json` renders to and parses from JSON text.
//!
//! The data model is intentionally simple — every serializable type converts
//! to and from a [`Value`]:
//!
//! * named-field structs become [`Value::Object`] (field order preserved),
//! * newtype structs serialize transparently as their inner value,
//! * tuple structs and tuples become [`Value::Array`],
//! * unit enum variants become [`Value::Str`] of the variant name,
//! * integers keep full `u64`/`i64` precision ([`Value::UInt`] /
//!   [`Value::Int`]), floats round-trip via [`Value::Float`].
//!
//! This is not a general serde implementation (no zero-copy, no custom
//! `#[serde(...)]` attributes, no non-self-describing formats); it is exactly
//! what the simulation-database persistence and report JSON export need.

/// Re-exported derive macros, mirroring `serde`'s `derive` feature.
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing value tree: the intermediate representation between
/// Rust types and JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `Option::None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (kept exact; never routed through `f64`).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {got:?}"))
}

/// A type that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    Value::Int(n) if *n >= 0 => <$t>::try_from(*n as u64)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    other => Err(type_error("unsigned integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::custom("integer out of range")),
                    other => Err(type_error("integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(type_error("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(type_error("object", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected tuple of {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(type_error("tuple (array)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(2.0);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), none);
        let t = ("x".to_string(), 3.5f64);
        assert_eq!(
            <(String, f64)>::from_value(&t.to_value()).unwrap(),
            ("x".to_string(), 3.5)
        );
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.field("a"), Some(&Value::UInt(1)));
        assert_eq!(v.field("b"), None);
    }
}
