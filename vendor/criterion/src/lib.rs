//! Offline wall-clock benchmark harness with a criterion-compatible API.
//!
//! Implements the subset of the `criterion` surface the workspace benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs one warm-up
//! invocation followed by `sample_size` timed invocations and reports
//! min / median / mean / max wall-clock time (plus element throughput when
//! configured). There is no outlier analysis or HTML report — the goal is a
//! stable, dependency-free way to track relative performance.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\n## {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, label: &str, routine: impl FnMut(&mut Bencher)) {
        let sample_size = self.default_sample_size;
        run_benchmark(label, sample_size, None, routine);
    }
}

/// Identifier combining a function name and a parameter, e.g.
/// `paper2_rm3/8`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Units processed per iteration, used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how many units one iteration processes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `label`.
    pub fn bench_function(&mut self, label: &str, routine: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, label);
        run_benchmark(&full, self.sample_size, self.throughput, routine);
        self
    }

    /// Benchmarks `routine` with an input value under a parameterized id.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        run_benchmark(&full, self.sample_size, self.throughput, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (flushes nothing; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark routines; [`Bencher::iter`] performs the measurement.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once for warm-up and `sample_size` timed times.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(routine());
                start.elapsed()
            })
            .collect();
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples — routine never called iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    print!(
        "{label:<50} median {} (mean {}, min {}, max {}, n={})",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        sorted.len()
    );
    if let Some(tp) = throughput {
        let per_second = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => print!("  [{:.3} Melem/s]", per_second(n) / 1e6),
            Throughput::Bytes(n) => print!("  [{:.3} MiB/s]", per_second(n) / (1 << 20) as f64),
        }
    }
    println!();
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        let mut calls = 0usize;
        group.sample_size(3).bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.throughput(Throughput::Elements(10)).bench_with_input(
            BenchmarkId::new("with_input", 4),
            &4usize,
            |b, &n| b.iter(|| n * 2),
        );
        group.finish();
        // 1 warm-up + 3 samples for the first bench.
        assert_eq!(calls, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
