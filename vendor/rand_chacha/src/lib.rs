//! Offline stand-in for `rand_chacha`.
//!
//! Exposes [`ChaCha8Rng`] with the `SeedableRng::seed_from_u64` constructor
//! the workspace uses. The underlying engine is the `rand` stub's
//! xoshiro256** — the workloads only require determinism per seed, not
//! ChaCha-compatible output (all ground truths are regenerated from seeds).

use rand::{RngCore, SeedableRng, Xoshiro256};

/// Seeded deterministic generator (drop-in for `rand_chacha::ChaCha8Rng`).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng(Xoshiro256);

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Domain-separate from StdRng so the two never produce equal streams
        // for equal seeds.
        ChaCha8Rng(Xoshiro256::from_seed_u64(seed ^ 0x5ee0_5ee0_5ee0_5ee0))
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        assert!((0.0..1.0).contains(&a.gen::<f64>()));
    }
}
