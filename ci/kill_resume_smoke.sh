#!/usr/bin/env bash
# Kill / resume / merge smoke shared by the sweep, E10 and serve CI jobs.
#
#   ci/kill_resume_smoke.sh SPEC OUT MODE
#
#   SPEC   scenario spec file (examples/specs/*.json)
#   OUT    scratch directory (removed and recreated)
#   MODE   sweep — run `sweep run` offline, SIGKILL it mid-run, `sweep
#          resume`, `sweep merge`
#          serve — start a `qosrm_serve` daemon, hammer it with
#          `qosrm_load`, SIGKILL the daemon mid-run, restart it on the same
#          port (the load generator rides out the window on transport
#          retries) and let the resumed run complete
#          dist — start a `sweep coordinate` coordinator and three `sweep
#          work` worker processes; SIGKILL one worker mid-shard (a per-shard
#          delay parks it between lease and completion), wait for its lease
#          to expire and the shard to be reinjected to a surviving worker,
#          then `sweep merge` the distributed run
#
# All modes first produce a reference result from one uninterrupted
# offline `sweep run` + `sweep merge` of the same spec, then assert the
# interrupted path's merged result is byte-identical to it (`cmp`).
#
# Environment overrides:
#   QOSRM_EXPERIMENTS_BIN    default target/release/qosrm_experiments
#   QOSRM_SERVE_BIN          default target/release/qosrm_serve
#   QOSRM_LOAD_BIN           default target/release/qosrm_load
#   QOSRM_SMOKE_SHARD_SIZE   default 4
#   QOSRM_SMOKE_CLIENTS      default 100 (serve mode: concurrent submitters)
#   QOSRM_SMOKE_SHARD_DELAY_MS  default 150 (serve mode: per-shard pause so
#                            the SIGKILL deterministically lands mid-run)
#   QOSRM_SMOKE_LEASE_MS     default 1500 (dist mode: coordinator lease)
#   QOSRM_SMOKE_VICTIM_DELAY_MS  default 2000 (dist mode: the victim
#                            worker's per-shard delay, the window the
#                            SIGKILL lands in)
set -euo pipefail

if [ $# -ne 3 ]; then
  echo "usage: $0 SPEC OUT MODE(sweep|serve|dist)" >&2
  exit 2
fi
SPEC=$1
OUT=$2
MODE=$3

EXPERIMENTS_BIN=${QOSRM_EXPERIMENTS_BIN:-target/release/qosrm_experiments}
SERVE_BIN=${QOSRM_SERVE_BIN:-target/release/qosrm_serve}
LOAD_BIN=${QOSRM_LOAD_BIN:-target/release/qosrm_load}
SHARD_SIZE=${QOSRM_SMOKE_SHARD_SIZE:-4}
CLIENTS=${QOSRM_SMOKE_CLIENTS:-100}
SHARD_DELAY_MS=${QOSRM_SMOKE_SHARD_DELAY_MS:-150}
LEASE_MS=${QOSRM_SMOKE_LEASE_MS:-1500}
VICTIM_DELAY_MS=${QOSRM_SMOKE_VICTIM_DELAY_MS:-2000}

rm -rf "$OUT"
mkdir -p "$OUT"

daemon_pid=""
extra_pids=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  for pid in $extra_pids; do
    kill -9 "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

# Polls until $2 appears in the (possibly not-yet-created) log file $1, or
# fails after 60s.
wait_for_line() {
  local file=$1 pattern=$2
  for _ in $(seq 1 1200); do
    if grep -q -- "$pattern" "$file" 2>/dev/null; then
      return 0
    fi
    sleep 0.05
  done
  echo "timed out waiting for \"$pattern\" in $file" >&2
  return 1
}

# Polls until at least $2 shard logs match the glob $1 (unquoted on
# purpose), or fails after 60s.
wait_for_shards() {
  local glob=$1 want=$2 n=0
  for _ in $(seq 1 600); do
    # shellcheck disable=SC2086
    n=$(ls $glob 2>/dev/null | wc -l) || n=0
    if [ "$n" -ge "$want" ]; then
      return 0
    fi
    sleep 0.1
  done
  echo "timed out waiting for $want shard log(s) at $glob" >&2
  return 1
}

# Reference: one uninterrupted offline run of the spec, merged.
"$EXPERIMENTS_BIN" sweep run --spec "$SPEC" --out "$OUT/ref" \
  --quick --shard-size "$SHARD_SIZE"
"$EXPERIMENTS_BIN" sweep merge --out "$OUT/ref" --result "$OUT/ref.json"

case "$MODE" in
  sweep)
    # Kill a second run of the same spec partway through (SIGKILL, no
    # cleanup), then resume it from its shard logs and manifest.
    "$EXPERIMENTS_BIN" sweep run --spec "$SPEC" --out "$OUT/killed" \
      --quick --shard-size "$SHARD_SIZE" &
    run_pid=$!
    wait_for_shards "$OUT/killed/shard-*.jsonl" 2
    kill -9 "$run_pid" 2>/dev/null || true
    wait "$run_pid" 2>/dev/null || true
    echo "killed after $(ls "$OUT"/killed/shard-*.jsonl 2>/dev/null | wc -l) shard log(s)"
    "$EXPERIMENTS_BIN" sweep resume --out "$OUT/killed"
    "$EXPERIMENTS_BIN" sweep merge --out "$OUT/killed" --result "$OUT/killed.json"
    ;;
  serve)
    # Fixed port so the restarted daemon is reachable at the address the
    # load generator keeps retrying (the daemon binds with retries, riding
    # out the dying listener's TIME_WAIT).
    ADDR="127.0.0.1:$(( (RANDOM % 20000) + 20000 ))"
    DATA="$OUT/serve-data"
    daemon_starts=0
    start_daemon() {
      "$SERVE_BIN" --addr "$ADDR" --data-dir "$DATA" \
        --shard-size "$SHARD_SIZE" --shard-delay-ms "$SHARD_DELAY_MS" \
        >>"$OUT/daemon.log" 2>&1 &
      daemon_pid=$!
      daemon_starts=$((daemon_starts + 1))
      # The log is append-only across restarts, so wait for the Nth
      # "listening on" line, not just any.
      for _ in $(seq 1 600); do
        if [ "$(grep -c "listening on" "$OUT/daemon.log" 2>/dev/null || true)" -ge "$daemon_starts" ]; then
          return 0
        fi
        sleep 0.1
      done
      echo "daemon did not come up on $ADDR" >&2
      return 1
    }
    start_daemon
    # Hammer the daemon: every submission is the same spec, so the whole
    # load deduplicates to one run whose merged bytes must match the
    # offline reference.
    "$LOAD_BIN" --addr "$ADDR" --spec "$SPEC" \
      --clients "$CLIENTS" --per-client 1 --shard-size "$SHARD_SIZE" \
      --timeout 300 --result "$OUT/killed.json" \
      --summary "$OUT/load_summary.json" >"$OUT/load.log" 2>&1 &
    load_pid=$!
    # SIGKILL the daemon mid-run, restart it on the same port, and let the
    # recovered run resume from its shard logs.
    wait_for_shards "$DATA/runs/*/shard-*.jsonl" 2
    kill -9 "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    echo "daemon SIGKILLed after $(ls "$DATA"/runs/*/shard-*.jsonl 2>/dev/null | wc -l) shard log(s); restarting"
    start_daemon
    wait "$load_pid"
    curl -fsS "http://$ADDR/stats" >"$OUT/stats.json"
    kill -9 "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=""
    ;;
  dist)
    # Coordinator + three wire workers. worker-1 is the victim: its long
    # per-shard delay parks it between leasing a shard and delivering the
    # completion, so the SIGKILL deterministically lands mid-shard. The
    # survivors drain the rest, the victim's lease expires after
    # $LEASE_MS, the coordinator reinjects the orphaned shard, and a
    # survivor re-runs it — the merged result must still be byte-identical
    # to the single-process reference.
    ADDR="127.0.0.1:$(( (RANDOM % 20000) + 20000 ))"
    "$EXPERIMENTS_BIN" sweep coordinate --spec "$SPEC" --out "$OUT/dist" \
      --quick --shard-size "$SHARD_SIZE" --addr "$ADDR" \
      --lease-ms "$LEASE_MS" >"$OUT/coordinator.log" 2>&1 &
    coord_pid=$!
    extra_pids="$coord_pid"
    wait_for_line "$OUT/coordinator.log" "coordinating on"

    "$EXPERIMENTS_BIN" sweep work --addr "$ADDR" --worker worker-1 \
      --shard-delay-ms "$VICTIM_DELAY_MS" >"$OUT/worker-1.log" 2>&1 &
    victim_pid=$!
    extra_pids="$extra_pids $victim_pid"
    # Kill the victim as soon as the coordinator grants it a shard — it is
    # still $VICTIM_DELAY_MS away from completing that shard.
    wait_for_line "$OUT/coordinator.log" "-> worker-1"
    kill -9 "$victim_pid" 2>/dev/null || true
    wait "$victim_pid" 2>/dev/null || true
    echo "worker-1 SIGKILLed mid-shard"

    "$EXPERIMENTS_BIN" sweep work --addr "$ADDR" --worker worker-2 \
      >"$OUT/worker-2.log" 2>&1 &
    w2_pid=$!
    "$EXPERIMENTS_BIN" sweep work --addr "$ADDR" --worker worker-3 \
      >"$OUT/worker-3.log" 2>&1 &
    w3_pid=$!
    extra_pids="$extra_pids $w2_pid $w3_pid"

    wait "$coord_pid"
    wait "$w2_pid"
    wait "$w3_pid"
    extra_pids=""
    # The orphaned shard must have come back through lease expiry, not by
    # any other path.
    grep -q "expired lease(s) reinjected" "$OUT/coordinator.log"
    grep "^leases:" "$OUT/coordinator.log" || true
    "$EXPERIMENTS_BIN" sweep merge --out "$OUT/dist" --result "$OUT/killed.json"
    ;;
  *)
    echo "unknown mode $MODE (want sweep, serve or dist)" >&2
    exit 2
    ;;
esac

cmp "$OUT/ref.json" "$OUT/killed.json"
echo "$MODE kill/resume/merge cycle is byte-identical"
