//! # qosrm — QoS-driven coordinated resource management
//!
//! Facade crate for the workspace reproducing *"QoS-Driven Coordinated
//! Management of Resources to Save Energy in Multi-Core Systems"* (Nejat,
//! Pericàs, Stenström — IPDPS 2019) and its Paper II extension.
//!
//! The implementation lives in the `crates/` members (see
//! `crates/README.md` for the architecture); this package owns the
//! repository-level integration tests and the runnable examples, and
//! re-exports the member crates under one roof:
//!
//! * [`types`] — shared vocabulary (platform, settings, QoS, observations);
//! * [`core`] — the resource managers RM1/RM2/RM3 and their optimizers;
//! * [`workload`] — the synthetic benchmark suite and workload mixes;
//! * [`simdb`] — the simulation-results database;
//! * [`sim`] — the co-phase proxy simulator;
//! * [`experiments`] — the E1–E9 experiment runners and the scenario-sweep
//!   engine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use experiments;
pub use qosrm_core as core;
pub use qosrm_types as types;
pub use rma_sim as sim;
pub use simdb;
pub use workload;
